//! Online matrix-vector multiplication via IVM^ε (paper Example 28 and
//! Prop. 10).
//!
//! An n×n Boolean matrix is the relation `R(A,B)`; the arriving vector is
//! `S(B)`. After loading a vector, enumerating `Q(A) = R(A,B), S(B)` yields
//! the non-zero rows of `M·v`. The OMv conjecture says no algorithm beats
//! `O(N^{1/2−γ})` update time *and* delay; IVM^ε at ε = ½ sits exactly on
//! that frontier.
//!
//! Run with: `cargo run --release --example matrix_mult`

use std::time::Instant;

use ivme_core::{Database, EngineOptions, IvmEngine};
use ivme_workload::OmvInstance;

fn main() {
    let n = 64;
    let rounds = 8;
    let inst = OmvInstance::generate(n, rounds, 0.2, 42);
    println!(
        "OMv instance: {}x{} matrix, {} entries, {} vector rounds",
        n,
        n,
        inst.matrix.len(),
        rounds
    );

    for eps in [0.0, 0.5, 1.0] {
        // Load the matrix once (preprocessing), then stream the vectors.
        let mut db = Database::new();
        for t in inst.matrix_tuples() {
            db.insert("R", t, 1);
        }
        let t0 = Instant::now();
        let mut eng =
            IvmEngine::from_sql("Q(A) :- R(A,B), S(B)", &db, EngineOptions::dynamic(eps)).unwrap();
        let prep = t0.elapsed();

        let t1 = Instant::now();
        let mut checked = 0usize;
        for r in 0..rounds {
            // Load vector r, enumerate M·v_r, then retract the vector.
            let vt = inst.vector_tuples(r);
            for t in &vt {
                eng.insert("S", t.clone()).unwrap();
            }
            let mut rows: Vec<i64> = eng.enumerate().map(|(t, _)| t.get(0).as_int()).collect();
            rows.sort_unstable();
            assert_eq!(rows, inst.expected_product(r), "round {r} product wrong");
            checked += rows.len();
            for t in &vt {
                eng.delete("S", t.clone()).unwrap();
            }
        }
        let stream = t1.elapsed();
        println!(
            "ε = {eps}: preprocessing {prep:?}, {rounds} rounds in {stream:?} \
             ({checked} product entries verified), {} minor / {} major rebalances",
            eng.stats().minor_rebalances,
            eng.stats().major_rebalances,
        );
    }
    println!("all rounds verified against the ground-truth product ✓");
}
