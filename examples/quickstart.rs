//! Quickstart: compile a hierarchical query, preprocess a small database,
//! enumerate, apply updates, and inspect the trade-off knob ε.
//!
//! Run with: `cargo run --example quickstart`

use ivme_core::{Database, EngineOptions, IvmEngine};
use ivme_data::Tuple;

fn main() {
    // The paper's running example (Example 28, δ1-hierarchical):
    //   Q(A, C) = R(A, B), S(B, C)
    // — not free-connex, so constant delay after linear preprocessing is
    // conjectured impossible. IVM^ε trades preprocessing O(N^{1+ε}),
    // update O(N^ε), and delay O(N^{1−ε}) via ε.
    let query = "Q(A, C) :- R(A, B), S(B, C)";

    let mut db = Database::new();
    db.insert_ints("R", &[&[1, 10], &[2, 10], &[1, 20], &[3, 30]]);
    db.insert_ints("S", &[&[10, 100], &[20, 100], &[20, 200]]);

    let mut engine = IvmEngine::from_sql(query, &db, EngineOptions::dynamic(0.5))
        .expect("hierarchical query compiles");

    println!("query:     {}", engine.query());
    println!("ε:         {}", engine.epsilon());
    println!("N:         {}", engine.db_size());
    println!("θ = M^ε:   {:.2}", engine.theta());
    println!("views:     {}", engine.num_views());
    println!();

    println!("initial result (distinct tuples with multiplicities):");
    for (tuple, mult) in engine.enumerate() {
        println!("  {tuple} -> {mult}");
    }

    // Single-tuple updates: inserts and deletes, maintained incrementally.
    engine.insert("S", Tuple::ints(&[30, 300])).unwrap();
    engine.delete("R", Tuple::ints(&[1, 10])).unwrap();

    println!("\nafter insert S(30,300) and delete R(1,10):");
    for (tuple, mult) in engine.enumerate() {
        println!("  {tuple} -> {mult}");
    }

    let stats = engine.stats();
    println!(
        "\nmaintenance: {} updates, {} major / {} minor rebalances",
        stats.updates, stats.major_rebalances, stats.minor_rebalances
    );

    // The same query at the two extremes of the trade-off:
    // ε = 0 → linear preprocessing, O(N) delay (α-acyclic behaviour);
    // ε = 1 → full materialization O(N²), O(1) delay (conjunctive corner).
    for eps in [0.0, 1.0] {
        let e = IvmEngine::from_sql(query, &db, EngineOptions::static_eval(eps)).unwrap();
        println!(
            "ε = {eps}: {} result tuples, {} entries of auxiliary state",
            e.count_distinct(),
            e.aux_space()
        );
    }
}
