//! Log-shipping replication: every read served by a replica must equal
//! brute force on *some committed prefix* of the primary's history — the
//! serving-layer prefix property, one network hop out — and the fan-out
//! must never let a slow or dead follower delay a primary ack.
//!
//! Pattern mirrors `tests/wal_recovery.rs`: randomized batch histories
//! with per-prefix brute-force oracles, driven over the wire. A sampler
//! thread reads the replica *while* the primary commits, so torn or
//! reordered application would be caught mid-flight, not just at
//! convergence.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ivme::core::brute_force;
use ivme::data::Tuple;
use ivme::query::parse_query;
use ivme::workload::{parse_listing, poll_stat, wait_for_epoch, Client, RecoveryWorkload};
use ivme_server::repl::{Replica, ReplicaConfig};
use ivme_server::{Server, ServerConfig, TestHooks};

fn temp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ivme_repl_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn primary_config(dir: &Path, snapshot_every: u64, repl_listen: &str) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_owned()),
        snapshot_every,
        repl_listen: Some(repl_listen.to_owned()),
        ..ServerConfig::default()
    }
}

fn start_primary(dir: &Path, snapshot_every: u64) -> Server {
    Server::start(primary_config(dir, snapshot_every, "127.0.0.1:0")).expect("primary must start")
}

fn start_replica(primary: SocketAddr) -> Replica {
    Replica::start(ReplicaConfig {
        primary: primary.to_string(),
        listen: "127.0.0.1:0".to_owned(),
    })
    .expect("replica must start")
}

/// Runs every line of `script` closed-loop, panicking on any `err`.
fn run_script(c: &mut Client, script: &str) {
    for line in script.lines() {
        c.expect_ok(line);
    }
}

/// The served result, parsed and sorted — comparable to `brute_force`.
fn listing(addr: SocketAddr) -> Vec<(Tuple, i64)> {
    let mut c = Client::connect(addr).unwrap();
    parse_listing(&c.expect_ok("list")).unwrap()
}

fn oracle(wl: &RecoveryWorkload, k: usize) -> Vec<(Tuple, i64)> {
    let q = parse_query(ivme::workload::recovery::QUERY).unwrap();
    brute_force(&q, &wl.database_after(k))
}

fn stat_field(stats: &str, key: &str) -> u64 {
    ivme::workload::stat_field(stats, key).unwrap_or_else(|| panic!("no `{key}` in stats: {stats}"))
}

/// The primary's committed epoch right now — the convergence target for
/// its replicas.
fn primary_epoch(c: &mut Client) -> u64 {
    stat_field(&c.expect_ok("stats"), "snapshot_epoch")
}

#[test]
fn replica_reads_match_a_committed_prefix_at_every_shard_count() {
    for shards in [1usize, 2, 4] {
        let wl = RecoveryWorkload::generate(0x1E91 + shards as u64, 20, 16, 5);
        let oracles: Vec<Vec<(Tuple, i64)>> =
            (0..=wl.batches.len()).map(|k| oracle(&wl, k)).collect();
        let dir = temp_dir(&format!("prefix_{shards}"));
        // snapshot_every = 5: several checkpoint/rotation cycles happen
        // *while the follower streams*, exercising the rebase path.
        let primary = start_primary(&dir, 5);
        let repl_addr = primary.repl_addr().expect("repl listener must be up");
        let replica = start_replica(repl_addr);
        let raddr = replica.addr();

        // Sample the replica concurrently with the commits: epochs and
        // full listings, as a client would see them.
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut epochs: Vec<u64> = Vec::new();
                let mut listings: Vec<Vec<(Tuple, i64)>> = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    if let Some(e) = poll_stat(raddr, "replica_epoch") {
                        epochs.push(e);
                    }
                    if let Ok(mut c) = Client::connect(raddr) {
                        // `list` errors while the replica has not yet
                        // replayed the `build` — that is "not yet", not a
                        // violation.
                        if let Ok(Ok(payload)) = c.request("list") {
                            listings.push(parse_listing(&payload).unwrap());
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                (epochs, listings)
            })
        };

        let mut c = Client::connect(primary.addr()).unwrap();
        run_script(&mut c, &wl.setup_script(shards));
        for k in 0..wl.batches.len() {
            run_script(&mut c, &wl.batch_script(k));
        }
        let target = primary_epoch(&mut c);
        assert!(
            wait_for_epoch(raddr, target, Duration::from_secs(30)),
            "S={shards}: replica never caught up to epoch {target}"
        );
        stop.store(true, Ordering::SeqCst);
        let (epochs, listings) = sampler.join().unwrap();

        // Staleness is monotone: the applied epoch never moves backwards.
        for w in epochs.windows(2) {
            assert!(
                w[0] <= w[1],
                "S={shards}: replica_epoch went backwards: {w:?}"
            );
        }
        // Every mid-stream read equals brute force on SOME committed
        // prefix — never a torn round, never a reordered one.
        for l in &listings {
            assert!(
                oracles.iter().any(|o| o == l),
                "S={shards}: replica served a state matching no committed prefix: {l:?}"
            );
        }
        assert!(
            !listings.is_empty(),
            "S={shards}: the sampler must have observed the replica mid-stream"
        );
        // Converged, the replica serves the full history.
        assert_eq!(listing(raddr), oracles[wl.batches.len()], "S={shards}");

        // Writes and admin are refused with a redirect naming the primary.
        let mut rc = Client::connect(raddr).unwrap();
        for cmd in [
            "insert R 999,999",
            "delete S 1,1",
            "query Q(A,C) :- R(A,B), S(B,C)",
            "build",
            ".shards 2",
            "epsilon 0.25",
        ] {
            let err = rc
                .request(cmd)
                .expect("connection must survive a refusal")
                .expect_err("replicas must refuse writes and admin");
            assert!(err.contains("read-only replica"), "`{cmd}`: {err}");
            assert!(
                err.contains(&repl_addr.to_string()),
                "`{cmd}` must name the primary: {err}"
            );
        }
        // …and reads on the same connection still work afterwards.
        assert_eq!(
            parse_listing(&rc.expect_ok("list")).unwrap(),
            oracles[wl.batches.len()]
        );
        let stats = rc.expect_ok("stats");
        assert_eq!(stat_field(&stats, "replica_epoch"), target, "{stats}");
        assert_eq!(stat_field(&stats, "replica_broken"), 0, "{stats}");

        drop(rc);
        drop(c);
        drop(replica);
        drop(primary);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Reserves a concrete port so the primary can be restarted on the same
/// replication address (ephemeral port 0 would move on restart).
fn reserve_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// `Server::start` with retries: rebinding a just-released port can
/// transiently fail while old sockets linger in TIME_WAIT.
fn start_primary_retry(config: &ServerConfig) -> Server {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match Server::start(config.clone()) {
            Ok(s) => return s,
            Err(e) => {
                assert!(Instant::now() < deadline, "primary never restarted: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

#[test]
fn kills_of_either_side_reconnect_and_converge() {
    let wl = RecoveryWorkload::generate(0x0FF1, 18, 12, 4);
    let dir = temp_dir("kills");
    let repl_listen = format!("127.0.0.1:{}", reserve_port());

    // The replica comes up FIRST, pointed at an address nothing listens
    // on yet: its capped-backoff dial must pick the primary up when it
    // arrives.
    let replica = Replica::start(ReplicaConfig {
        primary: repl_listen.clone(),
        listen: "127.0.0.1:0".to_owned(),
    })
    .unwrap();
    let raddr = replica.addr();
    let config = primary_config(&dir, 4, &repl_listen);
    let primary = start_primary_retry(&config);
    let mut c = Client::connect(primary.addr()).unwrap();
    run_script(&mut c, &wl.setup_script(2));
    for k in 0..6 {
        run_script(&mut c, &wl.batch_script(k));
    }
    let t1 = primary_epoch(&mut c);
    assert!(
        wait_for_epoch(raddr, t1, Duration::from_secs(30)),
        "initial backoff dial must converge"
    );
    assert_eq!(listing(raddr), oracle(&wl, 6));

    // Hard-kill the primary. The replica keeps serving its last applied
    // state — stale, consistent, available.
    drop(c);
    drop(primary);
    assert_eq!(
        listing(raddr),
        oracle(&wl, 6),
        "replica must keep serving while the primary is down"
    );

    // Restart the primary on the same data dir and replication address:
    // the follower reconnects and *resumes* from its applied epoch (its
    // hello is mid-log — no full re-bootstrap needed).
    let primary = start_primary_retry(&config);
    let mut c = Client::connect(primary.addr()).unwrap();
    for k in 6..9 {
        run_script(&mut c, &wl.batch_script(k));
    }
    let t2 = primary_epoch(&mut c);
    assert!(
        wait_for_epoch(raddr, t2, Duration::from_secs(30)),
        "reconnect after a primary restart must converge (target {t2}, replica stats: {:?})",
        Client::connect(raddr).map(|mut rc| rc.request("stats"))
    );
    assert_eq!(listing(raddr), oracle(&wl, 9));

    // Kill the follower mid-stream; the primary keeps committing
    // unbothered; a brand-new replica bootstraps the full history
    // (snapshot + WAL tail) and converges.
    drop(replica);
    for k in 9..wl.batches.len() {
        run_script(&mut c, &wl.batch_script(k));
    }
    let replica2 = start_replica(primary.repl_addr().unwrap());
    let t3 = primary_epoch(&mut c);
    assert!(
        wait_for_epoch(replica2.addr(), t3, Duration::from_secs(30)),
        "a fresh replica must bootstrap and converge"
    );
    let k_all = wl.batches.len();
    assert_eq!(listing(replica2.addr()), oracle(&wl, k_all));
    // The primary's stats see the follower and its acked frontier.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.expect_ok("stats");
        if stat_field(&stats, "repl_followers") == 1
            && stats.contains(&format!("acked_epoch = {t3}"))
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "primary stats must report the follower's acked epoch: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    drop(c);
    drop(replica2);
    drop(primary);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two-position valve for the replication barrier hook: `PASS` lets the
/// follower sender through, `BLOCK` freezes it — an arbitrarily slow
/// follower, pinned at the exact point where it stops draining its queue.
struct Gate {
    state: Mutex<u8>,
    cv: Condvar,
}

const PASS: u8 = 0;
const BLOCK: u8 = 1;

impl Gate {
    fn new(initial: u8) -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new(initial),
            cv: Condvar::new(),
        })
    }

    fn set(&self, v: u8) {
        *self.state.lock().unwrap() = v;
        self.cv.notify_all();
    }

    fn check(&self) {
        let mut s = self.state.lock().unwrap();
        while *s == BLOCK {
            s = self.cv.wait(s).unwrap();
        }
    }
}

/// The commit-insulation contract: a follower that stops draining is
/// disconnected by the sync thread's `try_send` overflow — primary acks
/// are never delayed, pinned by freezing the follower's *sender* thread
/// (not the sync thread) at the barrier with a queue depth of 2.
#[test]
fn a_slow_follower_is_disconnected_and_never_delays_primary_acks() {
    let wl = RecoveryWorkload::generate(0x510, 16, 10, 4);
    let dir = temp_dir("slow");
    let gate = Gate::new(PASS);
    let hook_gate = Arc::clone(&gate);
    let primary = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: 0,
        repl_listen: Some("127.0.0.1:0".to_owned()),
        repl_queue_depth: 2,
        hooks: TestHooks {
            repl_barrier: Some(Arc::new(move |_epoch| hook_gate.check())),
            ..TestHooks::default()
        },
        ..ServerConfig::default()
    })
    .expect("primary must start");
    let replica = start_replica(primary.repl_addr().unwrap());
    let raddr = replica.addr();
    let mut c = Client::connect(primary.addr()).unwrap();
    run_script(&mut c, &wl.setup_script(2));
    let t0 = primary_epoch(&mut c);
    assert!(
        wait_for_epoch(raddr, t0, Duration::from_secs(30)),
        "replica must be live-tailing before the freeze"
    );
    assert_eq!(primary.follower_count(), 1);

    // Freeze the follower's sender and keep committing. Every ack must
    // come back promptly (`expect_ok` would hang forever if a commit
    // waited on the frozen follower) while the depth-2 queue overflows
    // and the sync thread drops the follower.
    gate.set(BLOCK);
    const K: usize = 8;
    let t_start = Instant::now();
    for k in 0..K {
        run_script(&mut c, &wl.batch_script(k));
    }
    assert!(
        t_start.elapsed() < Duration::from_secs(30),
        "acks must not be gated on the frozen follower"
    );
    assert_eq!(listing(primary.addr()), oracle(&wl, K));
    let deadline = Instant::now() + Duration::from_secs(10);
    while primary.follower_count() != 0 {
        assert!(
            Instant::now() < deadline,
            "the frozen follower must have been disconnected by the overflow"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Thaw: the disconnected follower reconnects, resumes from its
    // applied epoch, and converges on everything it missed.
    gate.set(PASS);
    let target = primary_epoch(&mut c);
    assert!(
        wait_for_epoch(raddr, target, Duration::from_secs(30)),
        "the dropped follower must reconnect and converge"
    );
    assert_eq!(listing(raddr), oracle(&wl, K));
    let stats = c.expect_ok("stats");
    assert!(stats.contains("repl_followers = 1"), "{stats}");

    drop(c);
    drop(replica);
    drop(primary);
    let _ = std::fs::remove_dir_all(&dir);
}
