//! Integration tests spanning parser → classifier → planner → engine →
//! enumeration, on larger inputs than the unit tests, plus delay/update
//! scaling smoke checks.

use std::time::Instant;

use ivme_core::{brute_force, Database, EngineOptions, IvmEngine};
use ivme_data::Tuple;
use ivme_query::parse_query;
use ivme_workload::{star_db, two_path_db, update_stream};

#[test]
fn two_path_large_skewed_all_eps() {
    let db = two_path_db(800, 60, 1.1, 3);
    let q = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let want = brute_force(&q, &db);
    for eps in [0.0, 0.3, 0.5, 0.8, 1.0] {
        let eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(eps)).unwrap();
        assert_eq!(eng.result_sorted(), want, "ε={eps}");
        eng.check_consistency().unwrap();
    }
}

#[test]
fn star_query_skewed_stream() {
    let db = star_db(3, 200, 40, 1.0, 9);
    let q = parse_query("Q(Y0,Y1,Y2) :- R0(X,Y0), R1(X,Y1), R2(X,Y2)").unwrap();
    let mut mirror = db.clone();
    let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
    let ops = update_stream(200, &[("R0", 2), ("R1", 2), ("R2", 2)], 40, 1.0, 0.3, 21);
    for (i, op) in ops.iter().enumerate() {
        // The stream may delete tuples it inserted; guard against deleting
        // pre-existing data twice by checking the mirror first.
        if op.delta < 0 && mirror.get(&op.relation, &op.tuple) == 0 {
            continue;
        }
        eng.apply_update(&op.relation, op.tuple.clone(), op.delta)
            .unwrap();
        mirror.apply(&op.relation, op.tuple.clone(), op.delta);
        if i % 25 == 0 {
            assert_eq!(eng.result_sorted(), brute_force(&q, &mirror), "step {i}");
        }
    }
    assert_eq!(eng.result_sorted(), brute_force(&q, &mirror));
}

#[test]
fn enumeration_is_lazy_and_restartable() {
    let db = two_path_db(400, 30, 1.0, 5);
    let eng =
        IvmEngine::from_sql("Q(A,C) :- R(A,B), S(B,C)", &db, EngineOptions::dynamic(0.5)).unwrap();
    let total = eng.count_distinct();
    assert!(total > 0);
    // Taking a prefix is cheap and leaves the engine reusable.
    let prefix: Vec<_> = eng.enumerate().take(5).collect();
    assert_eq!(prefix.len(), 5.min(total));
    // Two full enumerations agree (same distinct set).
    let a = eng.result_sorted();
    let b = eng.result_sorted();
    assert_eq!(a, b);
    assert_eq!(a.len(), total);
}

#[test]
fn distinctness_of_enumerated_tuples() {
    // The Union algorithm must never emit a tuple twice, even with heavy
    // overlap between buckets.
    let mut db = Database::new();
    for b in 0..10i64 {
        for a in 0..10i64 {
            db.insert("R", Tuple::ints(&[a, b]), 1);
            db.insert("S", Tuple::ints(&[b, a]), 1);
        }
    }
    for eps in [0.0, 0.5, 1.0] {
        let eng = IvmEngine::from_sql("Q(A,C) :- R(A,B), S(B,C)", &db, EngineOptions::dynamic(eps))
            .unwrap();
        let tuples: Vec<Tuple> = eng.enumerate().map(|(t, _)| t).collect();
        let mut dedup = tuples.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(tuples.len(), dedup.len(), "duplicates at ε={eps}");
        assert_eq!(tuples.len(), 100);
        // Every multiplicity is the number of shared b values = 10.
        assert!(eng.enumerate().all(|(_, m)| m == 10));
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "timing-sensitive; run with --release")]
fn update_cost_scales_with_epsilon_on_heavy_values() {
    // For the two-path query, updating a heavy B value costs O(N^ε) in
    // IVM^ε but O(N) in full-materialization style (ε = 1). Smoke-check
    // the ordering on wall-clock time (coarse: 4x margin, large N).
    let n = 20_000;
    let mut db = Database::new();
    for i in 0..n as i64 {
        // Single ultra-heavy B = 0 plus a light tail.
        db.insert("R", Tuple::ints(&[i, if i % 4 == 0 { 0 } else { i }]), 1);
        db.insert("S", Tuple::ints(&[if i % 4 == 0 { 0 } else { i }, i]), 1);
    }
    let q = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let mut eng0 = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.0)).unwrap();
    let mut eng1 = IvmEngine::new(&q, &db, EngineOptions::dynamic(1.0)).unwrap();
    let reps = 40i64;
    let t0 = Instant::now();
    for i in 0..reps {
        eng0.insert("R", Tuple::ints(&[n as i64 + i, 0])).unwrap();
    }
    let d0 = t0.elapsed();
    let t1 = Instant::now();
    for i in 0..reps {
        eng1.insert("R", Tuple::ints(&[n as i64 + i, 0])).unwrap();
    }
    let d1 = t1.elapsed();
    assert!(
        d1 > d0 * 4,
        "heavy-value updates should be far cheaper at ε=0 ({d0:?}) than ε=1 ({d1:?})"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "timing-sensitive; run with --release")]
fn delay_scales_inversely_with_epsilon() {
    // First-tuple latency after opening an enumeration should shrink as ε
    // grows (more materialization, less on-the-fly union work) for a
    // heavy-skew instance. Coarse smoke check on time-to-first-k.
    let n = 8_000;
    let mut db = Database::new();
    for i in 0..n as i64 {
        db.insert("R", Tuple::ints(&[i % 500, i % 37]), 1);
        db.insert("S", Tuple::ints(&[i % 37, i % 500]), 1);
    }
    let q = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let eng0 = IvmEngine::new(&q, &db, EngineOptions::static_eval(0.0)).unwrap();
    let eng1 = IvmEngine::new(&q, &db, EngineOptions::static_eval(1.0)).unwrap();
    let k = 50;
    let t0 = Instant::now();
    let c0 = eng0.enumerate().take(k).count();
    let d0 = t0.elapsed();
    let t1 = Instant::now();
    let c1 = eng1.enumerate().take(k).count();
    let d1 = t1.elapsed();
    assert_eq!(c0, c1);
    assert!(
        d0 > d1,
        "first-{k} latency should drop from ε=0 ({d0:?}) to ε=1 ({d1:?})"
    );
}

#[test]
fn mixed_value_types_roundtrip() {
    // String-valued columns flow through planning, maintenance, and
    // enumeration unchanged.
    use ivme_data::Value;
    let mut db = Database::new();
    db.insert(
        "R",
        Tuple::new(vec![Value::from("alice"), Value::from(10i64)]),
        1,
    );
    db.insert(
        "S",
        Tuple::new(vec![Value::from(10i64), Value::from("db-conf")]),
        2,
    );
    let q = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
    let res = eng.result_sorted();
    assert_eq!(res.len(), 1);
    assert_eq!(res[0].1, 2);
    assert_eq!(res[0].0.get(0).as_str(), Some("alice"));
    eng.insert(
        "R",
        Tuple::new(vec![Value::from("bob"), Value::from(10i64)]),
    )
    .unwrap();
    assert_eq!(eng.count_distinct(), 2);
}
