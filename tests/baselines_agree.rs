//! The three independent evaluation paths — IVM^ε, the delta-IVM baseline,
//! the recompute baseline — and the brute-force oracle must agree on every
//! database and after every update.

use ivme_baselines::{DeltaIvm, Recompute};
use ivme_core::{brute_force, Database, EngineOptions, IvmEngine};
use ivme_query::parse_query;
use ivme_workload::{two_path_db, update_stream};

fn load_baselines(q: &ivme_query::Query, db: &Database) -> (DeltaIvm, Recompute) {
    let mut ivm = DeltaIvm::new(q);
    let mut rc = Recompute::new(q);
    for a in &q.atoms {
        if a.occurrence > 0 {
            continue; // baselines fan out occurrences internally
        }
        for (t, m) in db.rows(&a.relation) {
            ivm.apply_update(&a.relation, t.clone(), m);
            rc.apply_update(&a.relation, t, m);
        }
    }
    (ivm, rc)
}

#[test]
fn all_four_agree_statically() {
    for (src, db) in [
        ("Q(A,C) :- R(A,B), S(B,C)", two_path_db(300, 25, 1.0, 1)),
        ("Q(A) :- R(A,B), S(B,C)", two_path_db(200, 25, 0.8, 2)),
        ("Q(B) :- R(A,B), S(B,C)", two_path_db(200, 25, 1.2, 3)),
    ] {
        let q = parse_query(src).unwrap();
        let want = brute_force(&q, &db);
        let eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
        assert_eq!(eng.result_sorted(), want, "{src}: engine");
        let (ivm, rc) = load_baselines(&q, &db);
        assert_eq!(ivm.result_sorted(), want, "{src}: delta-IVM");
        assert_eq!(rc.evaluate(), want, "{src}: recompute");
    }
}

#[test]
fn all_four_agree_under_streams() {
    let src = "Q(A,C) :- R(A,B), S(B,C)";
    let q = parse_query(src).unwrap();
    let db = Database::new();
    let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
    let mut ivm = DeltaIvm::new(&q);
    let mut rc = Recompute::new(&q);
    let mut mirror = Database::new();
    let ops = update_stream(250, &[("R", 2), ("S", 2)], 12, 1.0, 0.3, 77);
    for (i, op) in ops.iter().enumerate() {
        eng.apply_update(&op.relation, op.tuple.clone(), op.delta)
            .unwrap();
        ivm.apply_update(&op.relation, op.tuple.clone(), op.delta);
        rc.apply_update(&op.relation, op.tuple.clone(), op.delta);
        mirror.apply(&op.relation, op.tuple.clone(), op.delta);
        if i % 10 == 0 || i + 1 == ops.len() {
            let want = brute_force(&q, &mirror);
            assert_eq!(eng.result_sorted(), want, "step {i}: engine");
            assert_eq!(ivm.result_sorted(), want, "step {i}: delta-IVM");
            assert_eq!(rc.evaluate(), want, "step {i}: recompute");
        }
    }
}

#[test]
fn q_hierarchical_stream_three_ways() {
    let src = "Q(X,Y0,Y1) :- R0(X,Y0), R1(X,Y1)";
    let q = parse_query(src).unwrap();
    let mut eng = IvmEngine::new(&q, &Database::new(), EngineOptions::dynamic(1.0)).unwrap();
    let mut ivm = DeltaIvm::new(&q);
    let mut mirror = Database::new();
    let ops = update_stream(200, &[("R0", 2), ("R1", 2)], 8, 0.7, 0.25, 13);
    for op in &ops {
        eng.apply_update(&op.relation, op.tuple.clone(), op.delta)
            .unwrap();
        ivm.apply_update(&op.relation, op.tuple.clone(), op.delta);
        mirror.apply(&op.relation, op.tuple.clone(), op.delta);
    }
    let want = brute_force(&q, &mirror);
    assert_eq!(eng.result_sorted(), want);
    assert_eq!(ivm.result_sorted(), want);
}

#[test]
fn delta_ivm_and_engine_agree_on_four_atom_query() {
    let src = "Q(C,D,E,F) :- R(A,B,D), S(A,B,E), T(A,C,F), U(A,C,G)";
    let q = parse_query(src).unwrap();
    let mut eng = IvmEngine::new(&q, &Database::new(), EngineOptions::dynamic(0.5)).unwrap();
    let mut ivm = DeltaIvm::new(&q);
    let mut mirror = Database::new();
    let ops = update_stream(
        150,
        &[("R", 3), ("S", 3), ("T", 3), ("U", 3)],
        4,
        0.8,
        0.2,
        31,
    );
    for op in &ops {
        eng.apply_update(&op.relation, op.tuple.clone(), op.delta)
            .unwrap();
        ivm.apply_update(&op.relation, op.tuple.clone(), op.delta);
        mirror.apply(&op.relation, op.tuple.clone(), op.delta);
    }
    let want = brute_force(&q, &mirror);
    assert_eq!(eng.result_sorted(), want, "engine");
    assert_eq!(ivm.result_sorted(), want, "delta-IVM");
}
