//! Snapshot stability: a held [`ShardedSnapshot`] is completely frozen.
//!
//! The serving layer's lock-free read path hands every reader an
//! immutable snapshot and lets the writer keep committing underneath.
//! That is only sound if a snapshot captured after commit `k` keeps
//! answering **every** read API — enumerate, result_sorted, count, point
//! lookup, paging — exactly as the brute-force oracle does on the
//! database prefix after `k` batches, no matter how many further batches
//! (or rejected batches) the engine absorbs. This test pins that
//! property for S ∈ {1, 2, 4} shards: capture a snapshot after every
//! commit, keep all of them alive to the end, then audit each one
//! against its own prefix oracle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivme::core::{brute_force, Database, DeltaBatch, EngineOptions, ShardedEngine};
use ivme::data::Tuple;
use ivme::query::parse_query;

const QUERY: &str = "Q(A,C) :- R(A,B), S(B,C)";
const RELS: &[(&str, usize)] = &[("R", 2), ("S", 2)];
const DOMAIN: i64 = 5;
const BATCHES: usize = 30;

/// Sorted canonical result form, comparable to `brute_force` output.
fn canon(mut rows: Vec<(Tuple, i64)>) -> Vec<(Tuple, i64)> {
    rows.sort();
    rows
}

#[test]
fn held_snapshots_stay_frozen_across_commits() {
    let q = parse_query(QUERY).unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED);

    // Seed database.
    let mut db = Database::new();
    for (rel, arity) in RELS {
        for _ in 0..10 {
            let t = Tuple::ints(
                &(0..*arity)
                    .map(|_| rng.gen_range(0..DOMAIN))
                    .collect::<Vec<i64>>(),
            );
            db.apply(rel, t, 1);
        }
    }

    // A randomized accepted-batch sequence (deletes only target tuples
    // live after the batch's own earlier entries, so every batch lands).
    let mut sim = db.clone();
    let mut batches: Vec<DeltaBatch> = Vec::new();
    for _ in 0..BATCHES {
        let mut entries: Vec<(&str, Tuple, i64)> = Vec::new();
        for _ in 0..rng.gen_range(1..6) {
            let (rel, arity) = RELS[rng.gen_range(0..RELS.len())];
            let t = Tuple::ints(
                &(0..arity)
                    .map(|_| rng.gen_range(0..DOMAIN))
                    .collect::<Vec<i64>>(),
            );
            let staged: i64 = entries
                .iter()
                .filter(|(r, bt, _)| *r == rel && bt == &t)
                .map(|(_, _, d)| d)
                .sum();
            let delta = if sim.get(rel, &t) + staged > 0 && rng.gen_bool(0.4) {
                -1
            } else {
                1
            };
            entries.push((rel, t, delta));
        }
        let mut batch = DeltaBatch::new();
        for (rel, t, delta) in entries {
            sim.apply(rel, t.clone(), delta);
            batch.push(rel, t, delta);
        }
        batches.push(batch);
    }

    // Oracle per prefix: the full result after 0, 1, …, BATCHES batches,
    // plus some known-absent probe tuples per prefix.
    let mut prefix_db = db.clone();
    let mut oracles = vec![brute_force(&q, &prefix_db)];
    for batch in &batches {
        for rel in batch.relations() {
            for (t, d) in batch.deltas(rel) {
                prefix_db.apply(rel, t.clone(), d);
            }
        }
        oracles.push(brute_force(&q, &prefix_db));
    }

    for shards in [1usize, 2, 4] {
        let mut eng = ShardedEngine::new(&q, &db, EngineOptions::dynamic(0.5), shards).unwrap();
        // Capture a snapshot per prefix and KEEP them all alive while the
        // engine keeps mutating underneath.
        let mut held = vec![eng.snapshot(0)];
        for (k, batch) in batches.iter().enumerate() {
            eng.apply_delta_batch(batch).unwrap();
            // Midway, a poisoned over-delete: rejected atomically, so no
            // prefix exists for it and no snapshot is taken.
            if k == BATCHES / 2 {
                let mut poison = DeltaBatch::new();
                poison.push("R", Tuple::ints(&[99, 99]), -1);
                assert!(
                    eng.apply_delta_batch(&poison).is_err(),
                    "S={shards}: over-delete must reject"
                );
            }
            held.push(eng.snapshot(k as u64 + 1));
        }

        // Every held snapshot still answers as its own prefix oracle.
        for (k, snap) in held.iter().enumerate() {
            let oracle = &oracles[k];
            assert_eq!(snap.epoch(), k as u64, "S={shards}");
            assert_eq!(
                canon(snap.enumerate().collect()),
                *oracle,
                "S={shards}: snapshot {k} enumerate diverged"
            );
            assert_eq!(
                canon(snap.result_sorted()),
                *oracle,
                "S={shards}: snapshot {k} result_sorted diverged"
            );
            assert_eq!(
                snap.count_distinct(),
                oracle.len(),
                "S={shards}: snapshot {k} count diverged"
            );
            for (t, m) in oracle {
                assert_eq!(
                    snap.multiplicity(t),
                    *m,
                    "S={shards}: snapshot {k} lookup diverged on {t}"
                );
                assert!(snap.contains(t));
            }
            assert_eq!(snap.multiplicity(&Tuple::ints(&[99, 99])), 0);
            assert!(!snap.contains(&Tuple::ints(&[99, 99])));
            // Paging: every window of the snapshot's own enumeration
            // order, including a tail-crossing and an out-of-range page.
            let full: Vec<(Tuple, i64)> = snap.enumerate().collect();
            for offset in [0, 1, full.len() / 2, full.len().saturating_sub(1)] {
                let page = snap.enumerate_page(offset, 3);
                assert_eq!(
                    page.as_slice(),
                    &full[offset.min(full.len())..(offset + 3).min(full.len())],
                    "S={shards}: snapshot {k} page({offset}, 3) diverged"
                );
            }
            assert!(snap.enumerate_page(full.len(), 4).is_empty());
        }

        // The engine's final state agrees with the last oracle, and a
        // fresh snapshot equals the last held one.
        assert_eq!(
            canon(eng.snapshot(BATCHES as u64).enumerate().collect()),
            *oracles.last().unwrap(),
            "S={shards}: final state diverged"
        );
    }
}
