//! Cross-crate golden tests pinning every worked example of the paper:
//! classifications (Fig. 2), widths, view trees (Figs. 9, 12, 23, 24), and
//! the end-to-end results of Examples 18, 19, 28, 29.

use ivme_core::{brute_force, Database, EngineOptions, IvmEngine, Mode};
use ivme_data::Schema;
use ivme_query::{classify, parse_query};

/// The query battery used across the experiments, with the paper's
/// expected classification: (source, hierarchical, free-connex,
/// q-hierarchical, w, δ).
pub const BATTERY: &[(&str, bool, bool, bool, usize, usize)] = &[
    // Example 28: the δ1 two-path.
    ("Q(A,C) :- R(A,B), S(B,C)", true, false, false, 2, 1),
    // Example 29: free-connex but δ1.
    ("Q(A) :- R(A,B), S(B)", true, true, false, 1, 1),
    // Example 18: free-connex hierarchical.
    (
        "Q(A,D,E) :- R(A,B,C), S(A,B,D), T(A,E)",
        true,
        true,
        false,
        1,
        1,
    ),
    // Example 19 / Fig. 12.
    (
        "Q(C,D,E,F) :- R(A,B,D), S(A,B,E), T(A,C,F), U(A,C,G)",
        true,
        false,
        false,
        3,
        3,
    ),
    // Example 12/14: hierarchical, free-connex, not q-hierarchical.
    (
        "Q(A,C,F) :- R(A,B,C), S(A,B,D), T(A,E,F), U(A,E,G)",
        true,
        true,
        false,
        1,
        1,
    ),
    // δ0 (q-hierarchical) star.
    ("Q(X,Y0,Y1) :- R0(X,Y0), R1(X,Y1)", true, true, true, 1, 0),
    // δ2 star (Def. 5 family).
    (
        "Q(Y0,Y1,Y2) :- R0(X,Y0), R1(X,Y1), R2(X,Y2)",
        true,
        false,
        false,
        3,
        2,
    ),
    // Boolean two-path: free-connex, w = 1; with no free variables the
    // q-hierarchical condition holds vacuously and δ = 0.
    ("Q() :- R(A,B), S(B,C)", true, true, true, 1, 0),
    // Full two-path: q-hierarchical.
    ("Q(A,B,C) :- R(A,B), S(B,C)", true, true, true, 1, 0),
    // Single atom.
    ("Q(A,B) :- R(A,B)", true, true, true, 1, 0),
];

#[test]
fn figure2_classification_battery() {
    for &(src, hier, fc, qh, w, d) in BATTERY {
        let q = parse_query(src).unwrap();
        let c = classify(&q);
        assert_eq!(c.hierarchical, hier, "{src}: hierarchical");
        assert_eq!(c.free_connex, fc, "{src}: free-connex");
        assert_eq!(c.q_hierarchical, qh, "{src}: q-hierarchical");
        assert_eq!(c.static_width, Some(w), "{src}: w");
        assert_eq!(c.dynamic_width, Some(d), "{src}: δ");
        assert_eq!(c.delta_rank, Some(d), "{src}: Prop. 8 (δi rank = δ)");
        // Prop. 17: δ ∈ {w−1, w}; Prop. 3: free-connex ⇒ w = 1;
        // Prop. 7: free-connex ⇒ δ ≤ 1; Prop. 6: q-hierarchical ⇔ δ0.
        assert!(d == w || d + 1 == w, "{src}: Prop. 17");
        if fc {
            assert_eq!(w, 1, "{src}: Prop. 3");
            assert!(d <= 1, "{src}: Prop. 7");
        }
        assert_eq!(qh, d == 0, "{src}: Prop. 6");
    }
}

#[test]
fn non_hierarchical_queries_are_rejected_by_planner() {
    for src in [
        "Q(A) :- R(A,B), S(B,C), T(C)",
        "Q() :- R(A,B), S(B,C), T(A,C)", // triangle
    ] {
        let q = parse_query(src).unwrap();
        assert!(!classify(&q).hierarchical, "{src}");
        assert!(ivme_plan::compile(&q, Mode::Dynamic).is_err(), "{src}");
    }
}

#[test]
fn figure23_view_trees_example_28() {
    let q = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let p = ivme_plan::compile(&q, Mode::Dynamic).unwrap();
    let rendered = p.render();
    for expected in [
        "VB(B)\n  ∃HB(B)\n  R'(B)\n    R(A,B)\n  S'(B)\n    S(B,C)\n",
        "VB(A,C)\n  R^B(A,B)\n  S^B(B,C)\n",
        "AllB(B)\n  AllA(B)\n    R(A,B)\n  AllC(B)\n    S(B,C)\n",
        "LB(B)\n  LA(B)\n    R^B(A,B)\n  LC(B)\n    S^B(B,C)\n",
    ] {
        assert!(
            rendered.contains(expected),
            "missing tree:\n{expected}\ngot:\n{rendered}"
        );
    }
    assert_eq!(p.indicators[0].keys, Schema::of(&["B"]));
}

#[test]
fn figure24_view_trees_example_29() {
    let q = parse_query("Q(A) :- R(A,B), S(B)").unwrap();
    let st = ivme_plan::compile(&q, Mode::Static).unwrap();
    assert_eq!(
        st.components[0].trees.len(),
        1,
        "static: single tree (Fig. 24)"
    );
    assert_eq!(
        st.components[0].trees[0].render(),
        "VB(A)\n  R(A,B)\n  S(B)\n"
    );
    let dy = ivme_plan::compile(&q, Mode::Dynamic).unwrap();
    assert_eq!(dy.components[0].trees.len(), 2);
    assert_eq!(dy.indicators.len(), 1);
}

#[test]
fn figure9_example_18_static_and_dynamic() {
    let q = parse_query("Q(A,D,E) :- R(A,B,C), S(A,B,D), T(A,E)").unwrap();
    // Static: free-connex, so a single BuildVT tree (Fig. 9 left tree).
    let st = ivme_plan::compile(&q, Mode::Static).unwrap();
    assert_eq!(st.components[0].trees.len(), 1);
    assert!(st.partitions.is_empty() && st.indicators.is_empty());
    // Dynamic: the query is free-connex but NOT δ0-hierarchical (bound B
    // dominates free D), so τ splits on the key (A,B): a heavy and a
    // light tree plus one indicator triple. The auxiliary views V'B(A)
    // and T'(A) of Fig. 9 appear inside the dynamic trees.
    let dy = ivme_plan::compile(&q, Mode::Dynamic).unwrap();
    assert_eq!(dy.components[0].trees.len(), 2);
    assert_eq!(dy.indicators.len(), 1);
    assert_eq!(dy.indicators[0].keys, Schema::of(&["A", "B"]));
    assert_eq!(dy.partitions.len(), 2, "R and S partitioned on (A,B)");
    let rendered = dy.render();
    assert!(
        rendered.contains("VB'(A)"),
        "aux view V'B missing:\n{rendered}"
    );
    assert!(
        rendered.contains("T'(A)"),
        "aux view T' missing:\n{rendered}"
    );
}

#[test]
fn figure12_example_19_tree_count_and_partitions() {
    let q = parse_query("Q(C,D,E,F) :- R(A,B,D), S(A,B,E), T(A,C,F), U(A,C,G)").unwrap();
    let p = ivme_plan::compile(&q, Mode::Dynamic).unwrap();
    assert_eq!(
        p.components[0].trees.len(),
        3,
        "three view trees (Example 19)"
    );
    assert_eq!(p.indicators.len(), 2, "indicators at A and (A,B)");
    assert_eq!(p.partitions.len(), 6, "R,S,T,U on A plus R,S on (A,B)");
}

#[test]
fn example_28_narrative_end_to_end() {
    // The matrix-multiplication narrative of Example 28: results and
    // multiplicities must match the oracle at the paper's ε = 1/2.
    let q = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let mut db = Database::new();
    let n = 12i64;
    for i in 0..n {
        for j in 0..n {
            if (i + j) % 3 == 0 {
                db.insert("R", ivme_data::Tuple::ints(&[i, j]), 1);
            }
            if (i * j) % 4 == 1 {
                db.insert("S", ivme_data::Tuple::ints(&[i, j]), 1);
            }
        }
    }
    let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
    assert_eq!(eng.result_sorted(), brute_force(&q, &db));
    // A burst of updates touching both heavy and light B values.
    for i in 0..n {
        let t = ivme_data::Tuple::ints(&[i, 0]);
        eng.insert("R", t.clone()).unwrap();
        db.apply("R", t, 1);
    }
    assert_eq!(eng.result_sorted(), brute_force(&q, &db));
}
