//! Crash recovery: a killed server restarts into exactly the state the
//! last acked commit left behind.
//!
//! Pattern mirrors `tests/snapshot_stability.rs`: drive a randomized
//! batch history whose every prefix has a brute-force oracle, kill the
//! server at chosen points (including mid-append, by truncating or
//! corrupting the WAL tail on disk), restart against the same data dir,
//! and compare the recovered result — over the wire, through the same
//! `list`/`stats` commands a client would use — against the prefix
//! oracle. Dropping a [`Server`] is the in-process "hard kill": it stops
//! the threads without the clean-shutdown path, so nothing is persisted
//! beyond what the WAL already made durable (fsync-before-ack).

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ivme::core::brute_force;
use ivme::data::Tuple;
use ivme::query::parse_query;
use ivme::workload::{parse_listing, Client, RecoveryWorkload};
use ivme_server::{FsyncMode, Server, ServerConfig, TestHooks};

fn temp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ivme_rec_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start(dir: &Path, snapshot_every: u64) -> Server {
    Server::start(ServerConfig {
        data_dir: Some(dir.to_owned()),
        fsync: FsyncMode::Group,
        snapshot_every,
        ..ServerConfig::default()
    })
    .expect("server must start")
}

/// Runs every line of `script` closed-loop, panicking on any `err`.
fn run_script(c: &mut Client, script: &str) {
    for line in script.lines() {
        c.expect_ok(line);
    }
}

/// The served result, parsed and sorted — comparable to `brute_force`.
fn listing(addr: SocketAddr) -> Vec<(Tuple, i64)> {
    let mut c = Client::connect(addr).unwrap();
    parse_listing(&c.expect_ok("list")).unwrap()
}

fn oracle(wl: &RecoveryWorkload, k: usize) -> Vec<(Tuple, i64)> {
    let q = parse_query(ivme::workload::recovery::QUERY).unwrap();
    brute_force(&q, &wl.database_after(k))
}

fn stat_field(stats: &str, key: &str) -> u64 {
    stats
        .split(&format!("{key} = "))
        .nth(1)
        .and_then(|s| s.split(|c: char| c == ',' || c.is_whitespace()).next())
        .unwrap_or_else(|| panic!("no `{key}` in stats: {stats}"))
        .parse()
        .unwrap_or_else(|_| panic!("unparsable `{key}` in stats: {stats}"))
}

#[test]
fn kill_and_recover_matches_the_prefix_oracle() {
    for shards in [1usize, 2, 4] {
        let wl = RecoveryWorkload::generate(0xD1E + shards as u64, 20, 24, 5);
        let dir = temp_dir(&format!("kill_{shards}"));
        const K1: usize = 10;

        // Phase 1: setup + 10 batches, then a hard kill. snapshot_every=7
        // makes several checkpoint/rotation cycles happen mid-run, so
        // recovery exercises snapshot-load + WAL-tail replay together.
        {
            let server = start(&dir, 7);
            let mut c = Client::connect(server.addr()).unwrap();
            run_script(&mut c, &wl.setup_script(shards));
            for k in 0..K1 {
                run_script(&mut c, &wl.batch_script(k));
            }
            assert_eq!(listing(server.addr()), oracle(&wl, K1), "S={shards} live");
            // drop(server): hard kill — no final snapshot.
        }

        // Phase 2: restart, verify the recovered state byte-for-byte,
        // then keep committing on top of it.
        let server = start(&dir, 7);
        assert_eq!(
            listing(server.addr()),
            oracle(&wl, K1),
            "S={shards} recovered"
        );
        let mut c = Client::connect(server.addr()).unwrap();
        let stats = c.expect_ok("stats");
        assert_eq!(
            stat_field(&stats, "updates"),
            wl.total_updates_after(K1),
            "S={shards}: cumulative updates must survive recovery: {stats}"
        );
        assert!(
            stat_field(&stats, "recovered_groups") > 0,
            "S={shards}: some rounds must have replayed from the WAL: {stats}"
        );
        assert_eq!(stat_field(&stats, "misroutes"), 0, "S={shards}");
        for k in K1..wl.batches.len() {
            run_script(&mut c, &wl.batch_script(k));
        }
        let k_all = wl.batches.len();
        assert_eq!(listing(server.addr()), oracle(&wl, k_all), "S={shards}");
        drop(c);
        drop(server);

        // Phase 3: one more kill/recover cycle over the full history.
        let server = start(&dir, 7);
        assert_eq!(
            listing(server.addr()),
            oracle(&wl, k_all),
            "S={shards} second recovery"
        );
        let mut c = Client::connect(server.addr()).unwrap();
        let stats = c.expect_ok("stats");
        assert_eq!(
            stat_field(&stats, "updates"),
            wl.total_updates_after(k_all),
            "S={shards}: {stats}"
        );
        drop(c);
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_final_wal_record_recovers_to_the_previous_batch() {
    let wl = RecoveryWorkload::generate(0x70A7, 15, 8, 4);
    let dir = temp_dir("torn");
    const K: usize = 8;
    {
        // snapshot_every = 0: no checkpoints, the WAL carries everything —
        // so the injected tear provably lands in the last batch's frame.
        let server = start(&dir, 0);
        let mut c = Client::connect(server.addr()).unwrap();
        run_script(&mut c, &wl.setup_script(2));
        for k in 0..K {
            run_script(&mut c, &wl.batch_script(k));
        }
    }
    // Fault injection: chop one byte off the log, as if the process died
    // mid-append of its final frame.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 1]).unwrap();

    let server = start(&dir, 0);
    assert_eq!(
        listing(server.addr()),
        oracle(&wl, K - 1),
        "a torn final record must roll back exactly one committed batch"
    );
    let mut c = Client::connect(server.addr()).unwrap();
    let stats = c.expect_ok("stats");
    assert_eq!(stat_field(&stats, "updates"), wl.total_updates_after(K - 1));
    // The truncated log is clean again: new commits append and survive.
    run_script(&mut c, &wl.batch_script(K - 1));
    assert_eq!(listing(server.addr()), oracle(&wl, K));
    drop(c);
    drop(server);
    let server = start(&dir, 0);
    assert_eq!(listing(server.addr()), oracle(&wl, K));
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_bit_recovers_a_valid_prefix_and_never_panics() {
    let wl = RecoveryWorkload::generate(0xB17F, 12, 8, 4);
    let dir = temp_dir("flip");
    const K: usize = 8;
    {
        let server = start(&dir, 0);
        let mut c = Client::connect(server.addr()).unwrap();
        run_script(&mut c, &wl.setup_script(1));
        for k in 0..K {
            run_script(&mut c, &wl.batch_script(k));
        }
    }
    // Corrupt a byte in the last quarter of the log — inside some batch
    // frame past the setup prefix. Recovery must truncate from the
    // damaged frame and serve the surviving prefix, never partial state.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let pos = bytes.len() - bytes.len() / 4;
    bytes[pos] ^= 0x10;
    std::fs::write(&wal, &bytes).unwrap();

    let server = start(&dir, 0);
    let served = listing(server.addr());
    let matched = (0..=K).rev().find(|&k| served == oracle(&wl, k));
    let Some(k) = matched else {
        panic!("recovered state matches no prefix oracle: {served:?}");
    };
    assert!(k < K, "corruption must cost at least the damaged frame");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_shutdown_persists_everything_and_replays_nothing() {
    let wl = RecoveryWorkload::generate(0xC1EA, 15, 6, 4);
    let dir = temp_dir("clean");
    const K: usize = 6;
    {
        let server = start(&dir, 0);
        let mut c = Client::connect(server.addr()).unwrap();
        run_script(&mut c, &wl.setup_script(2));
        for k in 0..K {
            run_script(&mut c, &wl.batch_script(k));
        }
        // The wire-level clean shutdown: drains, fsyncs, snapshots.
        let msg = c.expect_ok("shutdown");
        assert!(msg.contains("snapshot written"), "{msg}");
        assert!(server.is_shutdown());
    }
    let server = start(&dir, 0);
    assert_eq!(listing(server.addr()), oracle(&wl, K));
    let mut c = Client::connect(server.addr()).unwrap();
    let stats = c.expect_ok("stats");
    assert_eq!(stat_field(&stats, "updates"), wl.total_updates_after(K));
    assert_eq!(
        stat_field(&stats, "recovered_groups"),
        0,
        "a clean shutdown leaves nothing to replay: {stats}"
    );
    // Serve-layer counters also survive, via the snapshot header.
    assert!(
        server.serve_stats().group_commits >= K as u64,
        "group_commits must be cumulative across restarts: {:?}",
        server.serve_stats()
    );
    drop(c);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Three-position valve for the durability barrier hooks: `PASS` lets
/// the hooked thread through, `BLOCK` freezes it at the barrier, `CRASH`
/// panics it — killing the thread exactly at the injection point.
struct Gate {
    state: Mutex<u8>,
    cv: Condvar,
}

const PASS: u8 = 0;
const BLOCK: u8 = 1;
const CRASH: u8 = 2;

impl Gate {
    fn new(initial: u8) -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new(initial),
            cv: Condvar::new(),
        })
    }

    // The CRASH panic unwinds out of `check` while the lock is held,
    // poisoning the mutex — deliberate, so both methods shrug off poison.
    fn set(&self, v: u8) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = v;
        self.cv.notify_all();
    }

    /// The hook body: waits while blocked, panics on crash.
    fn check(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while *s == BLOCK {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if *s == CRASH {
            panic!("injected crash before WAL append");
        }
    }
}

/// The pipelined ordering contract, pinned by fault injection: a write
/// that was *published* but whose fsync never completed is (a) never
/// acked `ok` and (b) rolled back by recovery, while every write acked
/// before the crash survives. The sync-barrier hook freezes the sync
/// thread between the writer's publish and the WAL append, then kills it
/// there — the crash window the pipeline opened.
#[test]
fn crash_between_publish_and_fsync_loses_only_unacked_writes() {
    for shards in [1usize, 2, 4] {
        let wl = RecoveryWorkload::generate(0xFA57 + shards as u64, 16, 10, 4);
        let dir = temp_dir(&format!("inject_{shards}"));
        const K: usize = 6;
        let gate = Gate::new(PASS);
        {
            let hook_gate = Arc::clone(&gate);
            let server = Server::start(ServerConfig {
                data_dir: Some(dir.clone()),
                fsync: FsyncMode::Group,
                snapshot_every: 0,
                hooks: TestHooks {
                    sync_barrier: Some(Arc::new(move |_epoch| hook_gate.check())),
                    ..TestHooks::default()
                },
                ..ServerConfig::default()
            })
            .expect("server must start");
            let addr = server.addr();
            let mut c = Client::connect(addr).unwrap();
            run_script(&mut c, &wl.setup_script(shards));
            for k in 0..K {
                run_script(&mut c, &wl.batch_script(k));
            }
            assert_eq!(listing(addr), oracle(&wl, K), "S={shards} acked prefix");

            // Freeze the sync thread, then submit exactly one more batch:
            // the writer applies and publishes it, but its frames never
            // reach the disk and its ack is held behind the frozen fsync.
            gate.set(BLOCK);
            let script = wl.batch_script(K);
            let blocked = std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut last: Result<String, String> = Ok(String::new());
                for line in script.lines() {
                    last = c.request(line).expect("connection must stay alive");
                }
                last
            });
            // Publish-before-ack means other readers see the gated batch
            // while its submitter is still waiting on durability.
            let deadline = Instant::now() + Duration::from_secs(10);
            while listing(addr) != oracle(&wl, K + 1) {
                assert!(
                    Instant::now() < deadline,
                    "S={shards}: the gated batch never became visible"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            let stats = Client::connect(addr).unwrap().expect_ok("stats");
            assert!(
                stat_field(&stats, "fsync_backlog") >= 1,
                "S={shards}: the gated round must show as backlog: {stats}"
            );
            assert!(
                stat_field(&stats, "durable_epoch") < stat_field(&stats, "snapshot_epoch"),
                "S={shards}: durable frontier must lag the published epoch: {stats}"
            );

            // Crash: the sync thread dies at the barrier, before the
            // append. The gated submitter must see an error, not an ok.
            gate.set(CRASH);
            let last = blocked.join().unwrap();
            assert!(
                last.is_err(),
                "S={shards}: a write whose fsync never ran must not ack ok: {last:?}"
            );
            drop(c);
        }
        // Recovery: the acked prefix survives byte-for-byte; the
        // published-but-unacked batch rolled back.
        gate.set(PASS);
        let server = start(&dir, 0);
        assert_eq!(
            listing(server.addr()),
            oracle(&wl, K),
            "S={shards}: acked writes must survive, unacked may roll back"
        );
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The background-snapshot contract: commit rounds never wait on
/// snapshot serialization. The snapshot-barrier hook freezes the
/// snapshot thread mid-snapshot while a client keeps committing —
/// every ack arrives (`expect_ok` panics otherwise) and the published
/// epoch advances — and after release the installed snapshot plus the
/// rotated WAL tail reproduce the full acked history.
#[test]
fn commits_proceed_while_a_snapshot_is_in_progress() {
    let wl = RecoveryWorkload::generate(0x51AB, 16, 10, 4);
    let dir = temp_dir("slowsnap");
    const K: usize = 10;
    let gate = Gate::new(BLOCK); // the first snapshot freezes immediately
    {
        let hook_gate = Arc::clone(&gate);
        let server = Server::start(ServerConfig {
            data_dir: Some(dir.clone()),
            fsync: FsyncMode::Group,
            snapshot_every: 3,
            hooks: TestHooks {
                snapshot_barrier: Some(Arc::new(move |_epoch| hook_gate.check())),
                ..TestHooks::default()
            },
            ..ServerConfig::default()
        })
        .expect("server must start");
        let addr = server.addr();
        let mut c = Client::connect(addr).unwrap();
        run_script(&mut c, &wl.setup_script(2));
        // The cadence (every 3 dirty rounds) has dispatched a snapshot by
        // now; it is frozen inside the hook. Everything below runs with
        // that snapshot "in progress".
        let e0 = stat_field(&c.expect_ok("stats"), "snapshot_epoch");
        for k in 0..K {
            run_script(&mut c, &wl.batch_script(k));
        }
        let stats = c.expect_ok("stats");
        let e1 = stat_field(&stats, "snapshot_epoch");
        assert!(
            e1 >= e0 + K as u64,
            "epochs must advance while the snapshot thread is frozen: {e0} -> {e1}"
        );
        assert_eq!(
            stat_field(&stats, "snapshot_in_progress"),
            1,
            "the frozen snapshot must be visible in stats: {stats}"
        );
        assert!(
            stat_field(&stats, "durable_epoch") <= stat_field(&stats, "snapshot_epoch"),
            "{stats}"
        );
        assert_eq!(listing(addr), oracle(&wl, K));
        // Release the snapshot thread; dropping the server drains the
        // install and the WAL rotation it queues.
        gate.set(PASS);
        drop(c);
    }
    let snapshots = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            let name = e
                .as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .into_owned();
            name.starts_with("snapshot-") && name.ends_with(".ivme")
        })
        .count();
    assert!(
        snapshots >= 1,
        "the background snapshot must have installed"
    );
    let server = start(&dir, 0);
    assert_eq!(
        listing(server.addr()),
        oracle(&wl, K),
        "snapshot + rotated WAL tail must reproduce the acked history"
    );
    let mut c = Client::connect(server.addr()).unwrap();
    let stats = c.expect_ok("stats");
    assert!(
        stat_field(&stats, "recovered_groups") >= 1,
        "frames committed during the snapshot must survive its rotation: {stats}"
    );
    drop(c);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_wal_refuses_to_start() {
    let dir = temp_dir("badmagic");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal.log"), b"definitely not a wal file").unwrap();
    let err = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    assert!(
        err.is_err(),
        "a WAL with a bad header must stop the boot, not be wiped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
