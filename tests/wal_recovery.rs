//! Crash recovery: a killed server restarts into exactly the state the
//! last acked commit left behind.
//!
//! Pattern mirrors `tests/snapshot_stability.rs`: drive a randomized
//! batch history whose every prefix has a brute-force oracle, kill the
//! server at chosen points (including mid-append, by truncating or
//! corrupting the WAL tail on disk), restart against the same data dir,
//! and compare the recovered result — over the wire, through the same
//! `list`/`stats` commands a client would use — against the prefix
//! oracle. Dropping a [`Server`] is the in-process "hard kill": it stops
//! the threads without the clean-shutdown path, so nothing is persisted
//! beyond what the WAL already made durable (fsync-before-ack).

use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use ivme::core::brute_force;
use ivme::data::Tuple;
use ivme::query::parse_query;
use ivme::workload::{parse_listing, Client, RecoveryWorkload};
use ivme_server::{FsyncMode, Server, ServerConfig};

fn temp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ivme_rec_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start(dir: &Path, snapshot_every: u64) -> Server {
    Server::start(ServerConfig {
        data_dir: Some(dir.to_owned()),
        fsync: FsyncMode::Group,
        snapshot_every,
        ..ServerConfig::default()
    })
    .expect("server must start")
}

/// Runs every line of `script` closed-loop, panicking on any `err`.
fn run_script(c: &mut Client, script: &str) {
    for line in script.lines() {
        c.expect_ok(line);
    }
}

/// The served result, parsed and sorted — comparable to `brute_force`.
fn listing(addr: SocketAddr) -> Vec<(Tuple, i64)> {
    let mut c = Client::connect(addr).unwrap();
    parse_listing(&c.expect_ok("list")).unwrap()
}

fn oracle(wl: &RecoveryWorkload, k: usize) -> Vec<(Tuple, i64)> {
    let q = parse_query(ivme::workload::recovery::QUERY).unwrap();
    brute_force(&q, &wl.database_after(k))
}

fn stat_field(stats: &str, key: &str) -> u64 {
    stats
        .split(&format!("{key} = "))
        .nth(1)
        .and_then(|s| s.split(|c: char| c == ',' || c.is_whitespace()).next())
        .unwrap_or_else(|| panic!("no `{key}` in stats: {stats}"))
        .parse()
        .unwrap_or_else(|_| panic!("unparsable `{key}` in stats: {stats}"))
}

#[test]
fn kill_and_recover_matches_the_prefix_oracle() {
    for shards in [1usize, 2, 4] {
        let wl = RecoveryWorkload::generate(0xD1E + shards as u64, 20, 24, 5);
        let dir = temp_dir(&format!("kill_{shards}"));
        const K1: usize = 10;

        // Phase 1: setup + 10 batches, then a hard kill. snapshot_every=7
        // makes several checkpoint/rotation cycles happen mid-run, so
        // recovery exercises snapshot-load + WAL-tail replay together.
        {
            let server = start(&dir, 7);
            let mut c = Client::connect(server.addr()).unwrap();
            run_script(&mut c, &wl.setup_script(shards));
            for k in 0..K1 {
                run_script(&mut c, &wl.batch_script(k));
            }
            assert_eq!(listing(server.addr()), oracle(&wl, K1), "S={shards} live");
            // drop(server): hard kill — no final snapshot.
        }

        // Phase 2: restart, verify the recovered state byte-for-byte,
        // then keep committing on top of it.
        let server = start(&dir, 7);
        assert_eq!(
            listing(server.addr()),
            oracle(&wl, K1),
            "S={shards} recovered"
        );
        let mut c = Client::connect(server.addr()).unwrap();
        let stats = c.expect_ok("stats");
        assert_eq!(
            stat_field(&stats, "updates"),
            wl.total_updates_after(K1),
            "S={shards}: cumulative updates must survive recovery: {stats}"
        );
        assert!(
            stat_field(&stats, "recovered_groups") > 0,
            "S={shards}: some rounds must have replayed from the WAL: {stats}"
        );
        assert_eq!(stat_field(&stats, "misroutes"), 0, "S={shards}");
        for k in K1..wl.batches.len() {
            run_script(&mut c, &wl.batch_script(k));
        }
        let k_all = wl.batches.len();
        assert_eq!(listing(server.addr()), oracle(&wl, k_all), "S={shards}");
        drop(c);
        drop(server);

        // Phase 3: one more kill/recover cycle over the full history.
        let server = start(&dir, 7);
        assert_eq!(
            listing(server.addr()),
            oracle(&wl, k_all),
            "S={shards} second recovery"
        );
        let mut c = Client::connect(server.addr()).unwrap();
        let stats = c.expect_ok("stats");
        assert_eq!(
            stat_field(&stats, "updates"),
            wl.total_updates_after(k_all),
            "S={shards}: {stats}"
        );
        drop(c);
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_final_wal_record_recovers_to_the_previous_batch() {
    let wl = RecoveryWorkload::generate(0x70A7, 15, 8, 4);
    let dir = temp_dir("torn");
    const K: usize = 8;
    {
        // snapshot_every = 0: no checkpoints, the WAL carries everything —
        // so the injected tear provably lands in the last batch's frame.
        let server = start(&dir, 0);
        let mut c = Client::connect(server.addr()).unwrap();
        run_script(&mut c, &wl.setup_script(2));
        for k in 0..K {
            run_script(&mut c, &wl.batch_script(k));
        }
    }
    // Fault injection: chop one byte off the log, as if the process died
    // mid-append of its final frame.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 1]).unwrap();

    let server = start(&dir, 0);
    assert_eq!(
        listing(server.addr()),
        oracle(&wl, K - 1),
        "a torn final record must roll back exactly one committed batch"
    );
    let mut c = Client::connect(server.addr()).unwrap();
    let stats = c.expect_ok("stats");
    assert_eq!(stat_field(&stats, "updates"), wl.total_updates_after(K - 1));
    // The truncated log is clean again: new commits append and survive.
    run_script(&mut c, &wl.batch_script(K - 1));
    assert_eq!(listing(server.addr()), oracle(&wl, K));
    drop(c);
    drop(server);
    let server = start(&dir, 0);
    assert_eq!(listing(server.addr()), oracle(&wl, K));
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_bit_recovers_a_valid_prefix_and_never_panics() {
    let wl = RecoveryWorkload::generate(0xB17F, 12, 8, 4);
    let dir = temp_dir("flip");
    const K: usize = 8;
    {
        let server = start(&dir, 0);
        let mut c = Client::connect(server.addr()).unwrap();
        run_script(&mut c, &wl.setup_script(1));
        for k in 0..K {
            run_script(&mut c, &wl.batch_script(k));
        }
    }
    // Corrupt a byte in the last quarter of the log — inside some batch
    // frame past the setup prefix. Recovery must truncate from the
    // damaged frame and serve the surviving prefix, never partial state.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let pos = bytes.len() - bytes.len() / 4;
    bytes[pos] ^= 0x10;
    std::fs::write(&wal, &bytes).unwrap();

    let server = start(&dir, 0);
    let served = listing(server.addr());
    let matched = (0..=K).rev().find(|&k| served == oracle(&wl, k));
    let Some(k) = matched else {
        panic!("recovered state matches no prefix oracle: {served:?}");
    };
    assert!(k < K, "corruption must cost at least the damaged frame");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_shutdown_persists_everything_and_replays_nothing() {
    let wl = RecoveryWorkload::generate(0xC1EA, 15, 6, 4);
    let dir = temp_dir("clean");
    const K: usize = 6;
    {
        let server = start(&dir, 0);
        let mut c = Client::connect(server.addr()).unwrap();
        run_script(&mut c, &wl.setup_script(2));
        for k in 0..K {
            run_script(&mut c, &wl.batch_script(k));
        }
        // The wire-level clean shutdown: drains, fsyncs, snapshots.
        let msg = c.expect_ok("shutdown");
        assert!(msg.contains("snapshot written"), "{msg}");
        assert!(server.is_shutdown());
    }
    let server = start(&dir, 0);
    assert_eq!(listing(server.addr()), oracle(&wl, K));
    let mut c = Client::connect(server.addr()).unwrap();
    let stats = c.expect_ok("stats");
    assert_eq!(stat_field(&stats, "updates"), wl.total_updates_after(K));
    assert_eq!(
        stat_field(&stats, "recovered_groups"),
        0,
        "a clean shutdown leaves nothing to replay: {stats}"
    );
    // Serve-layer counters also survive, via the snapshot header.
    assert!(
        server.serve_stats().group_commits >= K as u64,
        "group_commits must be cumulative across restarts: {:?}",
        server.serve_stats()
    );
    drop(c);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_wal_refuses_to_start() {
    let dir = temp_dir("badmagic");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal.log"), b"definitely not a wal file").unwrap();
    let err = Server::start(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    assert!(
        err.is_err(),
        "a WAL with a bad header must stop the boot, not be wiped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
