//! Property-based tests: randomized hierarchical queries, databases, and
//! update streams, validated against the brute-force oracle; plus the
//! paper's structural propositions on random queries.
//!
//! Queries are generated from a random variable-order tree, which makes
//! them hierarchical *by construction* (every atom's schema is a
//! root-to-node path, so atom sets of any two variables are nested or
//! disjoint).
//!
//! The suite is property-style but deterministic: each property is driven
//! by an explicit seed loop (the offline environment has no `proptest`),
//! so failures reproduce exactly by seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivme_core::{brute_force, Database, EngineOptions, IvmEngine};
use ivme_data::{Schema, Tuple, Var};
use ivme_query::{classify, parse_query, Atom, Query};

/// Builds a random hierarchical query from a seed: a random forest of
/// variables with atoms attached along root-to-node paths.
fn random_hierarchical_query(seed: u64) -> Query {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atoms: Vec<Atom> = Vec::new();
    let mut var_counter = 0usize;
    let mut rel_counter = 0usize;
    let components = 1 + rng.gen_range(0..2);
    for _ in 0..components {
        let root = fresh_var(&mut var_counter);
        grow(
            &mut rng,
            vec![root],
            0,
            &mut atoms,
            &mut var_counter,
            &mut rel_counter,
        );
        if atoms.len() >= 5 {
            break;
        }
    }
    // Random free set; ensure determinism by iterating vars in order.
    let mut vars = Schema::empty();
    for a in &atoms {
        vars = vars.union(&a.schema);
    }
    let free: Schema = vars
        .vars()
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    Query::new("Q", free, atoms)
}

fn fresh_var(counter: &mut usize) -> Var {
    let v = Var::new(&format!("PV{counter}"));
    *counter += 1;
    v
}

fn grow(
    rng: &mut StdRng,
    path: Vec<Var>,
    depth: usize,
    atoms: &mut Vec<Atom>,
    var_counter: &mut usize,
    rel_counter: &mut usize,
) {
    let kids = if depth >= 2 || atoms.len() >= 4 {
        0
    } else {
        rng.gen_range(0..=2)
    };
    if kids == 0 || rng.gen_bool(0.3) {
        let name = format!("PR{rel_counter}");
        *rel_counter += 1;
        atoms.push(Atom::new(name, Schema::new(path.clone())));
    }
    for _ in 0..kids {
        let mut p = path.clone();
        p.push(fresh_var(var_counter));
        grow(rng, p, depth + 1, atoms, var_counter, rel_counter);
    }
}

/// Random database over a tiny domain (dense joins) for a query.
fn random_db(q: &Query, seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for a in &q.atoms {
        for _ in 0..rows {
            let t: Tuple = Tuple::ints(
                &(0..a.schema.arity())
                    .map(|_| rng.gen_range(0..4i64))
                    .collect::<Vec<_>>(),
            );
            db.insert(&a.relation, t, 1);
        }
    }
    db
}

/// Engine result == oracle for random hierarchical queries/databases,
/// across the ε grid and both modes.
#[test]
fn engine_matches_oracle_on_random_queries() {
    let mut case_rng = StdRng::seed_from_u64(0xE16);
    for case in 0..48 {
        let seed = case_rng.gen_range(0u64..5000);
        let q = random_hierarchical_query(seed);
        if !classify(&q).hierarchical {
            continue;
        }
        let db = random_db(&q, seed.wrapping_mul(31), 12);
        let eps = [0.0, 0.5, 1.0][case % 3];
        let want = brute_force(&q, &db);
        let st = IvmEngine::new(&q, &db, EngineOptions::static_eval(eps)).unwrap();
        assert_eq!(
            st.result_sorted(),
            want.clone(),
            "static {q} ε={eps} seed={seed}"
        );
        let dy = IvmEngine::new(&q, &db, EngineOptions::dynamic(eps)).unwrap();
        assert_eq!(dy.result_sorted(), want, "dynamic {q} ε={eps} seed={seed}");
    }
}

/// Engine stays equal to the oracle under a random update stream.
#[test]
fn engine_matches_oracle_under_updates() {
    let mut case_rng = StdRng::seed_from_u64(0xE17);
    for _ in 0..48 {
        let seed = case_rng.gen_range(0u64..3000);
        let q = random_hierarchical_query(seed);
        if !classify(&q).hierarchical {
            continue;
        }
        let mut db = random_db(&q, seed.wrapping_mul(17), 6);
        let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97));
        let mut live: Vec<(String, Tuple)> = Vec::new();
        for step in 0..30 {
            if !live.is_empty() && rng.gen_bool(0.3) {
                let i = rng.gen_range(0..live.len());
                let (rel, t) = live.swap_remove(i);
                eng.delete(&rel, t.clone()).unwrap();
                db.apply(&rel, t, -1);
            } else {
                let a = &q.atoms[rng.gen_range(0..q.atoms.len())];
                let t: Tuple = Tuple::ints(
                    &(0..a.schema.arity())
                        .map(|_| rng.gen_range(0..4i64))
                        .collect::<Vec<_>>(),
                );
                eng.insert(&a.relation, t.clone()).unwrap();
                db.apply(&a.relation, t.clone(), 1);
                live.push((a.relation.clone(), t));
            }
            assert_eq!(
                eng.result_sorted(),
                brute_force(&q, &db),
                "{q} diverged at step {step} (seed {seed})"
            );
        }
        eng.check_consistency().unwrap();
    }
}

/// Structural propositions of the paper on random hierarchical queries:
/// Prop. 3 (free-connex ⇒ w = 1), Prop. 6 (q-hier ⇔ δ0),
/// Prop. 7 (free-connex ⇒ δ ≤ 1), Prop. 8 (δi rank = δ),
/// Prop. 17 (δ ∈ {w−1, w}).
#[test]
fn width_propositions_hold() {
    for seed in 0..2000u64 {
        let q = random_hierarchical_query(seed * 10 + 1);
        let c = classify(&q);
        assert!(c.hierarchical, "seed {seed}: {q}");
        let w = c.static_width.unwrap();
        let d = c.dynamic_width.unwrap();
        assert!(d == w || d + 1 == w, "{q}: w={w} δ={d}");
        assert_eq!(c.delta_rank.unwrap(), d, "{q}: Prop. 8");
        if c.free_connex {
            assert_eq!(w, 1, "{q}: Prop. 3");
            assert!(d <= 1, "{q}: Prop. 7");
        }
        assert_eq!(c.q_hierarchical, d == 0, "{q}: Prop. 6");
    }
}

/// Partition invariants (Def. 11) survive random maintenance.
#[test]
fn partition_invariants_survive_streams() {
    for seed in 0..48u64 {
        let src = "Q(A,C) :- R(A,B), S(B,C)";
        let q = parse_query(src).unwrap();
        let mut eng = IvmEngine::new(&q, &Database::new(), EngineOptions::dynamic(0.5)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed * 41);
        let mut live: Vec<(&str, Tuple)> = Vec::new();
        for _ in 0..60 {
            if !live.is_empty() && rng.gen_bool(0.25) {
                let i = rng.gen_range(0..live.len());
                let (rel, t) = live.swap_remove(i);
                eng.delete(rel, t).unwrap();
            } else {
                let rel = if rng.gen_bool(0.5) { "R" } else { "S" };
                // Heavy skew: most tuples share one join value.
                let b = if rng.gen_bool(0.6) {
                    0
                } else {
                    rng.gen_range(0..8)
                };
                let o = rng.gen_range(0..50i64);
                let t = if rel == "R" {
                    Tuple::ints(&[o, b])
                } else {
                    Tuple::ints(&[b, o])
                };
                eng.insert(rel, t.clone()).unwrap();
                live.push((rel, t));
            }
            eng.check_consistency().unwrap();
        }
    }
}

#[test]
fn generator_yields_hierarchical_queries() {
    // Sanity: the generator's by-construction claim holds across seeds.
    for seed in 0..500u64 {
        let q = random_hierarchical_query(seed);
        assert!(classify(&q).hierarchical, "seed {seed}: {q}");
        assert!(!q.atoms.is_empty());
    }
}
