//! Loopback concurrency: no torn reads through the serving layer.
//!
//! One writer client applies a randomized sequence of delta batches
//! through the group-commit channel while reader clients continuously
//! enumerate over TCP. Every observed state must equal the brute-force
//! result of some *prefix* of the applied batches — the writer thread
//! publishes an immutable snapshot only after a group commits, and each
//! read dispatches against exactly one published snapshot, so a
//! half-applied batch (a "torn read") can never be observed even though
//! no read ever takes a lock. Readers also interleave `stats` probes and
//! assert the published `snapshot_epoch` is monotone per connection —
//! the observable face of the publish ordering. A mid-stream poisoned
//! batch must reject without perturbing the prefix sequence (rejections
//! publish nothing).

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivme::core::{brute_force, Database};
use ivme::data::Tuple;
use ivme::query::parse_query;
use ivme::workload::serve::{Client, Script};
use ivme_server::{Server, ServerConfig};

const QUERY: &str = "Q(A,C) :- R(A,B), S(B,C)";
const RELS: &[(&str, usize)] = &[("R", 2), ("S", 2)];
const DOMAIN: i64 = 5;

/// Canonical snapshot form: the sorted `"tuple xmult"` lines.
fn canon(rows: &[(Tuple, i64)]) -> Vec<String> {
    let mut lines: Vec<String> = rows.iter().map(|(t, m)| format!("{t} x{m}")).collect();
    lines.sort();
    lines
}

/// Parses a `list` response back into canonical form (drops the trailing
/// `(n tuples)` summary line).
fn canon_of_list(payload: &str) -> Vec<String> {
    let mut lines: Vec<String> = payload
        .lines()
        .filter(|l| !l.ends_with("tuples)"))
        .map(str::to_owned)
        .collect();
    lines.sort();
    lines
}

/// Renders one mixed batch as a pipelined script of the shared grammar.
fn batch_script(batch: &[(&str, Tuple, i64)]) -> Script {
    let mut text = String::from(".batch begin\n");
    for (rel, t, delta) in batch {
        let verb = if *delta > 0 { "insert" } else { "delete" };
        let _ = write!(text, "{verb} {rel} ");
        for (i, v) in t.values().iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            let _ = write!(text, "{v}");
        }
        text.push('\n');
    }
    text.push_str(".batch commit\n");
    Script {
        text,
        requests: batch.len() + 2,
        updates: batch.len(),
    }
}

#[test]
fn readers_never_observe_torn_batches() {
    let q = parse_query(QUERY).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);

    // Seeded database + a randomized batch sequence (inserts and deletes
    // of live tuples only — every batch must be accepted).
    let mut db = Database::new();
    for (rel, arity) in RELS {
        for _ in 0..12 {
            let t = Tuple::ints(
                &(0..*arity)
                    .map(|_| rng.gen_range(0..DOMAIN))
                    .collect::<Vec<i64>>(),
            );
            db.apply(rel, t, 1);
        }
    }
    let mut sim = db.clone();
    let mut batches: Vec<Vec<(&str, Tuple, i64)>> = Vec::new();
    for _ in 0..24 {
        let mut batch = Vec::new();
        for _ in 0..rng.gen_range(1..6) {
            let (rel, arity) = RELS[rng.gen_range(0..RELS.len())];
            let t = Tuple::ints(
                &(0..arity)
                    .map(|_| rng.gen_range(0..DOMAIN))
                    .collect::<Vec<i64>>(),
            );
            // Delete only when the tuple is live *after* the batch's own
            // earlier entries (consolidation sees the net delta).
            let staged: i64 = batch
                .iter()
                .filter(|(r, bt, _)| *r == rel && bt == &t)
                .map(|(_, _, d)| d)
                .sum();
            let delta = if sim.get(rel, &t) + staged > 0 && rng.gen_bool(0.4) {
                -1
            } else {
                1
            };
            batch.push((rel, t, delta));
        }
        for (rel, t, delta) in &batch {
            sim.apply(rel, t.clone(), *delta);
        }
        batches.push(batch);
    }

    // Ground truth per prefix: brute force after 0, 1, …, 24 batches.
    let mut prefix_db = db.clone();
    let mut prefixes: Vec<Vec<String>> = vec![canon(&brute_force(&q, &prefix_db))];
    for batch in &batches {
        for (rel, t, delta) in batch {
            prefix_db.apply(rel, t.clone(), *delta);
        }
        prefixes.push(canon(&brute_force(&q, &prefix_db)));
    }
    let valid: HashSet<&Vec<String>> = prefixes.iter().collect();

    // Server setup over the wire, sharded build.
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.expect_ok(&format!("query {QUERY}"));
    admin.expect_ok(".shards 2");
    for (rel, _) in RELS {
        for (t, m) in db.rows(rel) {
            for _ in 0..m {
                let vals: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
                admin.expect_ok(&format!("row {rel} {}", vals.join(",")));
            }
        }
    }
    admin.expect_ok("build");
    assert_eq!(canon_of_list(&admin.expect_ok("list")), prefixes[0]);

    // Readers enumerate concurrently with the writer; every snapshot must
    // be some prefix.
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let done = &done;
                let valid = &valid;
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let mut reads = 0usize;
                    let mut last_epoch = 0u64;
                    while !done.load(Ordering::Relaxed) || reads < 40 {
                        let snap = canon_of_list(&c.expect_ok("list"));
                        assert!(
                            valid.contains(&snap),
                            "torn read: observed snapshot matches no prefix:\n{snap:?}"
                        );
                        // The published snapshot epoch never goes backwards
                        // on one connection.
                        let stats = c.expect_ok("stats");
                        let epoch: u64 = stats
                            .split("snapshot_epoch = ")
                            .nth(1)
                            .and_then(|s| s.split_whitespace().next())
                            .expect("stats must report snapshot_epoch")
                            .parse()
                            .unwrap();
                        assert!(
                            epoch >= last_epoch,
                            "snapshot_epoch went backwards: {last_epoch} -> {epoch}"
                        );
                        last_epoch = epoch;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        let mut writer = Client::connect(addr).unwrap();
        for (i, batch) in batches.iter().enumerate() {
            let errors = writer.run_script(&batch_script(batch)).unwrap();
            assert_eq!(errors, 0, "batch {i} unexpectedly rejected");
            // Mid-stream, fire a poisoned batch: it must reject without
            // adding an observable state.
            if i == batches.len() / 2 {
                let poison = vec![("R", Tuple::ints(&[99, 99]), -1)];
                let errors = writer.run_script(&batch_script(&poison)).unwrap();
                assert_eq!(errors, 1, "over-delete must reject");
            }
        }
        done.store(true, Ordering::Relaxed);
        let total: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total >= 120, "readers barely ran ({total} reads)");
    });

    // Final state is exactly the full prefix.
    assert_eq!(
        canon_of_list(&admin.expect_ok("list")),
        *prefixes.last().unwrap()
    );
    let stats = admin.expect_ok("stats");
    assert!(stats.contains("misroutes = 0"), "{stats}");
}
