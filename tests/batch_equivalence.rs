//! Batch-semantics equivalence suite.
//!
//! For random hierarchical queries, databases, and batches (including
//! cancelling pairs, multi-copy deltas, and multi-relation batches), the
//! three ways of applying a set of updates must agree:
//!
//! 1. `IvmEngine::apply_batch` (one batched maintenance round),
//! 2. sequential `apply_update` calls on a twin engine,
//! 3. the `brute_force` oracle on the net database.
//!
//! The baselines' batch entry points (`DeltaIvm::apply_batch`,
//! `Recompute::apply_batch`) are held to the same standard, and batches
//! whose net effect over-deletes must be rejected atomically everywhere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivme_baselines::{DeltaIvm, Recompute};
use ivme_core::{brute_force, Database, EngineOptions, IvmEngine, Update};
use ivme_data::{DeltaBatch, Schema, Tuple, Var};
use ivme_query::{classify, Atom, Query};

/// Random hierarchical query from a seed (atoms along root-to-node paths
/// of a random variable forest — hierarchical by construction).
fn random_hierarchical_query(seed: u64) -> Query {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atoms: Vec<Atom> = Vec::new();
    let mut var_counter = 0usize;
    let mut rel_counter = 0usize;
    let components = 1 + rng.gen_range(0..2);
    for _ in 0..components {
        let root = fresh_var(&mut var_counter);
        grow(
            &mut rng,
            vec![root],
            0,
            &mut atoms,
            &mut var_counter,
            &mut rel_counter,
        );
        if atoms.len() >= 5 {
            break;
        }
    }
    let mut vars = Schema::empty();
    for a in &atoms {
        vars = vars.union(&a.schema);
    }
    let free: Schema = vars
        .vars()
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    Query::new("Q", free, atoms)
}

fn fresh_var(counter: &mut usize) -> Var {
    let v = Var::new(&format!("BV{counter}"));
    *counter += 1;
    v
}

fn grow(
    rng: &mut StdRng,
    path: Vec<Var>,
    depth: usize,
    atoms: &mut Vec<Atom>,
    var_counter: &mut usize,
    rel_counter: &mut usize,
) {
    let kids = if depth >= 2 || atoms.len() >= 4 {
        0
    } else {
        rng.gen_range(0..=2)
    };
    if kids == 0 || rng.gen_bool(0.3) {
        let name = format!("BR{rel_counter}");
        *rel_counter += 1;
        atoms.push(Atom::new(name, Schema::new(path.clone())));
    }
    for _ in 0..kids {
        let mut p = path.clone();
        p.push(fresh_var(var_counter));
        grow(rng, p, depth + 1, atoms, var_counter, rel_counter);
    }
}

fn random_db(q: &Query, seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for a in &q.atoms {
        for _ in 0..rows {
            let t: Tuple = Tuple::ints(
                &(0..a.schema.arity())
                    .map(|_| rng.gen_range(0..4i64))
                    .collect::<Vec<_>>(),
            );
            db.insert(&a.relation, t, 1);
        }
    }
    db
}

fn random_tuple(rng: &mut StdRng, arity: usize) -> Tuple {
    Tuple::ints(
        &(0..arity)
            .map(|_| rng.gen_range(0..4i64))
            .collect::<Vec<_>>(),
    )
}

/// Builds a random batch whose every prefix is sequentially valid against
/// `db`: inserts over a tiny domain, deletes of tuples live in the db or
/// inserted earlier in the batch, and explicit cancelling insert/delete
/// pairs. Returns the updates and the mirrored net database.
fn random_batch(q: &Query, db: &Database, seed: u64, len: usize) -> (Vec<Update>, Database) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = db.clone();
    let mut live: Vec<(String, Tuple)> = Vec::new();
    for a in &q.atoms {
        for (t, _) in db.rows(&a.relation) {
            live.push((a.relation.clone(), t));
        }
    }
    let mut updates = Vec::new();
    for _ in 0..len {
        let roll: f64 = rng.gen();
        if roll < 0.25 && !live.is_empty() {
            // Delete something live.
            let i = rng.gen_range(0..live.len());
            let (rel, t) = live.swap_remove(i);
            net.apply(&rel, t.clone(), -1);
            updates.push(Update::delete(rel, t));
        } else if roll < 0.45 {
            // Cancelling pair on a fresh random tuple.
            let a = &q.atoms[rng.gen_range(0..q.atoms.len())];
            let t = random_tuple(&mut rng, a.schema.arity());
            updates.push(Update::insert(a.relation.clone(), t.clone()));
            updates.push(Update::delete(a.relation.clone(), t));
        } else {
            // Insert (possibly multi-copy).
            let a = &q.atoms[rng.gen_range(0..q.atoms.len())];
            let t = random_tuple(&mut rng, a.schema.arity());
            let mult = 1 + rng.gen_range(0..2i64);
            net.apply(&a.relation, t.clone(), mult);
            live.push((a.relation.clone(), t.clone()));
            updates.push(Update::new(a.relation.clone(), t, mult));
        }
    }
    (updates, net)
}

fn load_delta_ivm(q: &Query, db: &Database) -> DeltaIvm {
    let mut ivm = DeltaIvm::new(q);
    for a in &q.atoms {
        for (t, m) in db.rows(&a.relation) {
            ivm.apply_update(&a.relation, t, m);
        }
    }
    ivm
}

fn load_recompute(q: &Query, db: &Database) -> Recompute {
    let mut rc = Recompute::new(q);
    for a in &q.atoms {
        for (t, m) in db.rows(&a.relation) {
            rc.apply_update(&a.relation, t, m);
        }
    }
    rc
}

/// apply_batch ≡ sequential replay ≡ brute-force oracle, for the engine
/// across the ε grid and for both baselines.
#[test]
fn batched_apply_matches_sequential_and_oracle() {
    let mut case_rng = StdRng::seed_from_u64(0xBA7C);
    for case in 0..36 {
        let seed = case_rng.gen_range(0u64..10_000);
        let q = random_hierarchical_query(seed);
        if !classify(&q).hierarchical {
            continue;
        }
        let db = random_db(&q, seed.wrapping_mul(29), 8);
        let (updates, net_db) = random_batch(&q, &db, seed.wrapping_mul(53), 40);
        let want = brute_force(&q, &net_db);

        let eps = [0.0, 0.5, 1.0][case % 3];
        // Batched engine.
        let mut batched = IvmEngine::new(&q, &db, EngineOptions::dynamic(eps)).unwrap();
        batched.apply_batch(&updates).unwrap();
        assert_eq!(
            batched.result_sorted(),
            want,
            "{q} ε={eps} seed={seed}: batched engine diverged from oracle"
        );
        batched.check_consistency().unwrap();
        assert_eq!(batched.stats().updates, updates.len() as u64);
        assert_eq!(batched.stats().batches, 1);

        // Sequential twin.
        let mut seq = IvmEngine::new(&q, &db, EngineOptions::dynamic(eps)).unwrap();
        for u in &updates {
            seq.apply_update(&u.relation, u.tuple.clone(), u.delta)
                .unwrap();
        }
        assert_eq!(
            seq.result_sorted(),
            want,
            "{q} ε={eps} seed={seed}: sequential engine diverged from oracle"
        );

        // Baselines, batched.
        let mut ivm = load_delta_ivm(&q, &db);
        ivm.apply_batch(&updates).unwrap();
        assert_eq!(
            ivm.result_sorted(),
            want,
            "{q} seed={seed}: DeltaIvm batch diverged from oracle"
        );
        let mut rc = load_recompute(&q, &db);
        rc.apply_batch(&updates).unwrap();
        assert_eq!(
            rc.evaluate(),
            want,
            "{q} seed={seed}: Recompute batch diverged from oracle"
        );
    }
}

/// A batch whose net effect over-deletes is rejected atomically by the
/// engine and both baselines: no state change anywhere.
#[test]
fn net_over_delete_rejects_atomically() {
    let mut case_rng = StdRng::seed_from_u64(0xBAD);
    for _ in 0..16 {
        let seed = case_rng.gen_range(0u64..10_000);
        let q = random_hierarchical_query(seed);
        if !classify(&q).hierarchical {
            continue;
        }
        let db = random_db(&q, seed.wrapping_mul(31), 6);
        let (mut updates, _) = random_batch(&q, &db, seed.wrapping_mul(59), 10);
        // Poison: delete 3 copies of a tuple that is absent everywhere.
        let a = &q.atoms[0];
        let absent = Tuple::ints(&(0..a.schema.arity()).map(|_| 999).collect::<Vec<_>>());
        updates.push(Update::new(a.relation.clone(), absent, -3));

        let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
        let before = eng.result_sorted();
        let stats_before = eng.stats();
        assert!(
            eng.apply_batch(&updates).is_err(),
            "{q}: poisoned batch accepted"
        );
        assert_eq!(
            eng.result_sorted(),
            before,
            "{q}: rejected batch left a trace"
        );
        assert_eq!(eng.stats(), stats_before, "{q}: rejected batch was counted");
        eng.check_consistency().unwrap();

        let mut ivm = load_delta_ivm(&q, &db);
        let ivm_before = ivm.result_sorted();
        assert!(ivm.apply_batch(&updates).is_err());
        assert_eq!(ivm.result_sorted(), ivm_before);

        let mut rc = load_recompute(&q, &db);
        let rc_before = rc.evaluate();
        assert!(rc.apply_batch(&updates).is_err());
        assert_eq!(rc.evaluate(), rc_before);
    }
}

/// A delete that would be invalid on its own is fine when the same batch
/// inserts the tuple: only the net delta matters.
#[test]
fn cancelling_over_delete_is_net_valid() {
    let q = ivme_query::parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let mut db = Database::new();
    db.insert_ints("R", &[&[1, 10]]);
    db.insert_ints("S", &[&[10, 5]]);
    let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
    // (2,10) is absent: raw sequence [delete, insert] would reject on the
    // delete, but the batch nets to zero and must succeed as a no-op.
    let updates = vec![
        Update::delete("R", Tuple::ints(&[2, 10])),
        Update::insert("R", Tuple::ints(&[2, 10])),
        Update::insert("S", Tuple::ints(&[10, 6])),
    ];
    eng.apply_batch(&updates).unwrap();
    let mut want = vec![(Tuple::ints(&[1, 5]), 1), (Tuple::ints(&[1, 6]), 1)];
    want.sort();
    assert_eq!(eng.result_sorted(), want);
    eng.check_consistency().unwrap();
}

/// Fully cancelled batches are no-ops that still count their cardinality.
#[test]
fn fully_cancelled_batch_is_noop() {
    let q = ivme_query::parse_query("Q(A) :- R(A,B), S(B)").unwrap();
    let mut db = Database::new();
    db.insert_ints("R", &[&[7, 1]]);
    db.insert_ints("S", &[&[1]]);
    let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
    let before = eng.result_sorted();
    let mut batch = DeltaBatch::new();
    for i in 0..10 {
        batch.insert("R", Tuple::ints(&[i, i]));
        batch.delete("R", Tuple::ints(&[i, i]));
    }
    assert!(batch.is_empty());
    eng.apply_delta_batch(&batch).unwrap();
    assert_eq!(eng.result_sorted(), before);
    assert_eq!(eng.stats().updates, 20, "cardinality still counted");
    eng.check_consistency().unwrap();
}

/// Unknown relations and arity mismatches reject the whole batch.
#[test]
fn structural_errors_reject_whole_batch() {
    let q = ivme_query::parse_query("Q(A) :- R(A,B), S(B)").unwrap();
    let db = Database::new();
    let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.5)).unwrap();
    let bad_rel = vec![
        Update::insert("R", Tuple::ints(&[1, 2])),
        Update::insert("T", Tuple::ints(&[3])),
    ];
    assert!(eng.apply_batch(&bad_rel).is_err());
    let bad_arity = vec![
        Update::insert("R", Tuple::ints(&[1, 2])),
        Update::insert("S", Tuple::ints(&[1, 2, 3])),
    ];
    assert!(eng.apply_batch(&bad_arity).is_err());
    assert_eq!(eng.count_distinct(), 0, "rejected batches left data behind");
    assert_eq!(eng.stats().updates, 0);
}

/// Bulk-loading via one huge batch equals loading via the database, and
/// rebalancing bookkeeping (threshold doubling) catches up in one round.
#[test]
fn bulk_load_batch_matches_preprocessing() {
    let q = ivme_query::parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut db = Database::new();
    let mut updates = Vec::new();
    for _ in 0..400 {
        let r = Tuple::ints(&[rng.gen_range(0..40), rng.gen_range(0..12)]);
        let s = Tuple::ints(&[rng.gen_range(0..12), rng.gen_range(0..40)]);
        db.insert("R", r.clone(), 1);
        db.insert("S", s.clone(), 1);
        updates.push(Update::insert("R", r));
        updates.push(Update::insert("S", s));
    }
    for eps in [0.0, 0.5, 1.0] {
        let preprocessed = IvmEngine::new(&q, &db, EngineOptions::dynamic(eps)).unwrap();
        let mut loaded = IvmEngine::new(&q, &Database::new(), EngineOptions::dynamic(eps)).unwrap();
        loaded.apply_batch(&updates).unwrap();
        assert_eq!(
            loaded.result_sorted(),
            preprocessed.result_sorted(),
            "ε={eps}"
        );
        assert_eq!(loaded.db_size(), preprocessed.db_size(), "ε={eps}");
        loaded.check_consistency().unwrap();
        // The size invariant ⌊M/4⌋ ≤ N < M must hold after the bulk load.
        let (n, m) = (loaded.db_size(), loaded.threshold_base());
        assert!(
            m / 4 <= n && n < m,
            "ε={eps}: invariant broken (N={n}, M={m})"
        );
    }
}
