//! Sharded-engine equivalence and atomicity suite.
//!
//! A `ShardedEngine` over any shard count must be observationally
//! indistinguishable from a plain `IvmEngine`:
//!
//! 1. randomized workloads (insert/delete/mixed batches with mid-run
//!    enumerations) on the paper's example queries agree for
//!    `S ∈ {1, 2, 4, 7}`,
//! 2. rejection is atomic **across** shards: a batch that over-deletes on
//!    one shard leaves every other shard untouched,
//! 3. multi-component queries (where per-shard result *products* would be
//!    wrong) and nullary-atom components (pinned to shard 0) still agree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivme_core::{
    brute_force, Database, DeltaBatch, EngineOptions, IvmEngine, ShardedEngine, Update,
};
use ivme_data::Tuple;
use ivme_query::parse_query;

/// The paper's example queries (single- and multi-component, bound and
/// free roots, repeated structure).
const QUERIES: &[&str] = &[
    "Q(A,C) :- R(A,B), S(B,C)",                             // Example 28
    "Q(A) :- R(A,B), S(B)",                                 // Example 29 / OMv
    "Q(A,D,E) :- R(A,B,C), S(A,B,D), T(A,E)",               // Example 18
    "Q(C,D,E,F) :- R(A,B,D), S(A,B,E), T(A,C,F), U(A,C,G)", // Example 19
    "Q(X,Y0,Y1) :- R(X,Y0), S(X,Y1)",                       // δ0 star
    "Q() :- R(A,B), S(B,C)",                                // Boolean
    "Q(A,C) :- R(A,B), S(C)",                               // two components
];

const SHARD_GRID: &[usize] = &[1, 2, 4, 7];

fn rel_names(q: &ivme_query::Query) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = Vec::new();
    for a in &q.atoms {
        if !out.iter().any(|(n, _)| n == &a.relation) {
            out.push((a.relation.clone(), a.schema.arity()));
        }
    }
    out
}

fn random_tuple(rng: &mut StdRng, arity: usize, domain: i64) -> Tuple {
    Tuple::ints(
        &(0..arity)
            .map(|_| rng.gen_range(0..domain))
            .collect::<Vec<i64>>(),
    )
}

#[test]
fn randomized_workloads_match_unsharded_engine() {
    for (qi, src) in QUERIES.iter().enumerate() {
        let q = parse_query(src).unwrap();
        let rels = rel_names(&q);
        for &shards in SHARD_GRID {
            let seed = 1000 * qi as u64 + shards as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            // Random initial database (skewed: small domain ⇒ heavy keys).
            let mut db = Database::new();
            for (name, arity) in &rels {
                for _ in 0..rng.gen_range(10..60) {
                    db.apply(name, random_tuple(&mut rng, *arity, 6), 1);
                }
            }
            let eps = [0.0, 0.5, 1.0][rng.gen_range(0..3usize)];
            let opts = EngineOptions::dynamic(eps);
            let mut plain = IvmEngine::new(&q, &db, opts).unwrap();
            let mut sharded = ShardedEngine::new(&q, &db, opts, shards).unwrap();
            if shards > 1 && qi < 6 {
                assert_eq!(sharded.num_shards(), shards, "{src}");
            }
            assert_eq!(
                sharded.result_sorted(),
                plain.result_sorted(),
                "{src} S={shards}: preprocessing diverged"
            );
            assert_eq!(sharded.result_sorted(), brute_force(&q, &db), "{src}");
            // Mixed update rounds: single tuples and batches, enumerating
            // mid-run after every round.
            for round in 0..8 {
                if rng.gen_bool(0.3) {
                    // Single-tuple update (insert, or delete of a live row).
                    let (name, arity) = &rels[rng.gen_range(0..rels.len())];
                    let t = random_tuple(&mut rng, *arity, 6);
                    let delta = if db.get(name, &t) > 0 && rng.gen_bool(0.5) {
                        -1
                    } else {
                        1
                    };
                    plain.apply_update(name, t.clone(), delta).unwrap();
                    sharded.apply_update(name, t.clone(), delta).unwrap();
                    db.apply(name, t, delta);
                } else {
                    // Batch across relations, deletes only of live rows.
                    let mut batch = DeltaBatch::new();
                    let mut net = Vec::new();
                    for _ in 0..rng.gen_range(5..40) {
                        let (name, arity) = &rels[rng.gen_range(0..rels.len())];
                        let t = random_tuple(&mut rng, *arity, 6);
                        let live = db.get(name, &t)
                            + net
                                .iter()
                                .filter(|(n, nt, _)| n == name && nt == &t)
                                .map(|(_, _, d)| d)
                                .sum::<i64>();
                        let delta = if live > 0 && rng.gen_bool(0.4) { -1 } else { 1 };
                        batch.push(name, t.clone(), delta);
                        net.push((name.clone(), t, delta));
                    }
                    plain.apply_delta_batch(&batch).unwrap();
                    sharded.apply_delta_batch(&batch).unwrap();
                    for (name, t, d) in net {
                        db.apply(&name, t, d);
                    }
                }
                assert_eq!(
                    sharded.result_sorted(),
                    plain.result_sorted(),
                    "{src} S={shards} round {round}"
                );
            }
            assert_eq!(sharded.result_sorted(), brute_force(&q, &db), "{src}");
            sharded.check_consistency().unwrap();
            assert_eq!(sharded.db_size(), plain.db_size(), "{src} S={shards}");
            assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), plain.db_size());
        }
    }
}

#[test]
fn cross_shard_rejection_is_atomic() {
    // Q(A) :- R(A,B), S(B): root B ⇒ R routed on column 1, S on column 0.
    let q = parse_query("Q(A) :- R(A,B), S(B)").unwrap();
    let mut db = Database::new();
    for i in 0..64 {
        db.insert("R", Tuple::ints(&[i, i % 16]), 1);
    }
    for j in 0..16 {
        db.insert("S", Tuple::ints(&[j]), 1);
    }
    let mut eng = ShardedEngine::new(&q, &db, EngineOptions::dynamic(0.5), 4).unwrap();
    assert_eq!(eng.num_shards(), 4);
    // Pick a victim shard and a B value it owns, then build a batch that
    // writes to every *other* shard and over-deletes on the victim.
    let victim = eng.shard_of("S", &Tuple::ints(&[0])).unwrap();
    let before: Vec<_> = (0..4).map(|s| eng.shard(s).result_sorted()).collect();
    let before_sizes = eng.shard_sizes();
    let before_stats = eng.stats();
    let mut batch = DeltaBatch::new();
    let mut touched = [false; 4];
    for j in 0..16 {
        let s = eng.shard_of("S", &Tuple::ints(&[j])).unwrap();
        if s != victim {
            batch.push("S", Tuple::ints(&[j]), 1);
            touched[s] = true;
        }
    }
    assert!(
        touched.iter().filter(|&&t| t).count() >= 2,
        "test needs inserts on several non-victim shards"
    );
    // Over-delete: S(999) is absent everywhere; it hashes to *some* shard,
    // so make sure the batch is invalid on the victim specifically.
    batch.push("S", Tuple::ints(&[0]), -2); // S(0) has multiplicity 1 on victim
    let err = eng.apply_delta_batch(&batch).unwrap_err();
    assert!(matches!(err, ivme_core::UpdateError::Negative(_)), "{err}");
    // Every shard — including those whose sub-batch was valid — is
    // untouched.
    for s in 0..4 {
        assert_eq!(
            eng.shard(s).result_sorted(),
            before[s],
            "shard {s} leaked state from a rejected batch"
        );
    }
    assert_eq!(eng.shard_sizes(), before_sizes);
    assert_eq!(eng.stats(), before_stats);
    eng.check_consistency().unwrap();
    // The same updates without the over-delete go through.
    let mut ok = DeltaBatch::new();
    for j in 0..16 {
        if eng.shard_of("S", &Tuple::ints(&[j])).unwrap() != victim {
            ok.push("S", Tuple::ints(&[j]), 1);
        }
    }
    eng.apply_delta_batch(&ok).unwrap();
    assert!(eng.stats().batches > before_stats.batches);
}

#[test]
fn unknown_relation_and_arity_reject_atomically() {
    let q = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
    let mut db = Database::new();
    db.insert_ints("R", &[&[1, 10], &[2, 11]]);
    db.insert_ints("S", &[&[10, 7], &[11, 8]]);
    let mut eng = ShardedEngine::new(&q, &db, EngineOptions::dynamic(0.5), 3).unwrap();
    let before = eng.result_sorted();
    let mut bad = DeltaBatch::new();
    bad.push("R", Tuple::ints(&[3, 10]), 1);
    bad.push("Mystery", Tuple::ints(&[1]), 1);
    assert!(matches!(
        eng.apply_delta_batch(&bad).unwrap_err(),
        ivme_core::UpdateError::UnknownRelation(_)
    ));
    let mut bad = DeltaBatch::new();
    bad.push("R", Tuple::ints(&[3, 10]), 1);
    bad.push("S", Tuple::ints(&[1, 2, 3]), 1); // wrong arity
    assert!(matches!(
        eng.apply_delta_batch(&bad).unwrap_err(),
        ivme_core::UpdateError::Arity(_)
    ));
    assert_eq!(eng.result_sorted(), before);
}

#[test]
fn nullary_atoms_pin_to_shard_zero_and_stay_correct() {
    let q = parse_query("Q(A) :- R(A), S()").unwrap();
    let mut db = Database::new();
    for i in 0..20 {
        db.insert("R", Tuple::ints(&[i]), 1);
    }
    db.insert("S", Tuple::empty(), 2);
    let opts = EngineOptions::dynamic(0.5);
    let plain = IvmEngine::new(&q, &db, opts).unwrap();
    let mut sharded = ShardedEngine::new(&q, &db, opts, 4).unwrap();
    assert_eq!(sharded.shard_of("S", &Tuple::empty()), Some(0));
    assert_eq!(sharded.result_sorted(), plain.result_sorted());
    // Deleting one copy of S() halves nothing; deleting both empties Q.
    sharded.delete("S", Tuple::empty()).unwrap();
    assert_eq!(sharded.count_distinct(), 20);
    sharded.delete("S", Tuple::empty()).unwrap();
    assert_eq!(sharded.count_distinct(), 0);
}

#[test]
fn batch_api_and_stats_counters() {
    let q = parse_query("Q(A) :- R(A,B), S(B)").unwrap();
    let mut db = Database::new();
    db.insert_ints("R", &[&[1, 10], &[2, 11]]);
    let opts = EngineOptions::dynamic(0.5);
    let mut eng = ShardedEngine::new(&q, &db, opts, 2).unwrap();
    eng.apply_batch(&[
        Update::insert("S", Tuple::ints(&[10])),
        Update::insert("S", Tuple::ints(&[11])),
        Update::insert("S", Tuple::ints(&[12])),
        Update::delete("S", Tuple::ints(&[12])),
    ])
    .unwrap();
    let s = eng.stats();
    assert_eq!(s.updates, 4, "cardinality counted at the sharded level");
    assert_eq!(s.batches, 1);
    assert_eq!(eng.count_distinct(), 2);
    // Zero deltas are no-ops and stay out of the counters, as unsharded.
    eng.apply_update("S", Tuple::ints(&[10]), 0).unwrap();
    assert_eq!(eng.stats().updates, 4);
    assert_eq!(eng.stats().batches, 1);
    // Static mode refuses updates through the sharded path too — including
    // batches whose net effect is empty (parity with IvmEngine).
    let st = EngineOptions::static_eval(0.5);
    let mut stat_eng = ShardedEngine::new(&q, &db, st, 2).unwrap();
    assert!(matches!(
        stat_eng.insert("S", Tuple::ints(&[10])).unwrap_err(),
        ivme_core::UpdateError::StaticMode
    ));
    assert!(matches!(
        stat_eng.apply_delta_batch(&DeltaBatch::new()).unwrap_err(),
        ivme_core::UpdateError::StaticMode
    ));
}
