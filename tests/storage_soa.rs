//! Property-style tests for the storage layer rebuilt in this PR: inline
//! cached-hash tuples, the struct-of-arrays index links with group handles,
//! and tombstoned group maps.
//!
//! The strategy is an interleaved random workload (in-repo `rand` shim —
//! deterministic seeds) checked against a `BTreeMap` oracle after every
//! phase: stored entries, per-index group lists, group degrees, and the
//! intrusive live list must all agree with the oracle, and
//! `Relation::check_storage` must hold (link integrity, group handles,
//! tombstone accounting, cached-hash validity). A second suite drives the
//! engine through heavy↔light migration storms at small θ and asserts
//! `check_consistency` plus agreement with a from-scratch recompute.

use std::collections::{BTreeMap, BTreeSet};

use ivme_baselines::Recompute;
use ivme_core::{Database, EngineOptions, IvmEngine};
use ivme_data::{Relation, Schema, Tuple};
use ivme_query::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Checks `rel` against the oracle: size, per-tuple multiplicities, the
/// live-list scan, every index's group degrees and group contents, and the
/// internal storage invariants.
fn assert_matches_oracle(
    rel: &Relation,
    oracle: &BTreeMap<Tuple, i64>,
    indexes: &[(ivme_data::IndexId, Vec<usize>)],
) {
    rel.check_storage().expect("storage invariants");
    assert_eq!(rel.len(), oracle.len(), "|R| diverged");
    // Live-list scan sees exactly the oracle's entries.
    let scanned: BTreeMap<Tuple, i64> = rel.iter().map(|(t, m)| (t.clone(), m)).collect();
    assert_eq!(&scanned, oracle, "live list diverged");
    for (t, m) in oracle {
        assert_eq!(rel.get(t), *m, "multiplicity of {t:?}");
        assert!(rel.contains(t));
    }
    // Per index: group degrees and group membership equal the oracle's
    // projection, and the distinct-key count matches.
    for &(idx, ref positions) in indexes {
        let mut groups: BTreeMap<Tuple, BTreeMap<Tuple, i64>> = BTreeMap::new();
        for (t, m) in oracle {
            groups
                .entry(t.project(positions))
                .or_default()
                .insert(t.clone(), *m);
        }
        assert_eq!(rel.num_groups(idx), groups.len(), "num_groups");
        let seen_keys: BTreeSet<Tuple> = rel.group_keys(idx).cloned().collect();
        assert_eq!(
            seen_keys,
            groups.keys().cloned().collect::<BTreeSet<Tuple>>(),
            "group key set"
        );
        for (key, members) in &groups {
            assert!(rel.group_contains(idx, key));
            assert_eq!(rel.group_len(idx, key), members.len(), "degree of {key:?}");
            let walked: BTreeMap<Tuple, i64> = rel
                .group_iter(idx, key)
                .map(|(t, m)| (t.clone(), m))
                .collect();
            assert_eq!(&walked, members, "group {key:?} contents");
        }
    }
}

#[test]
fn random_interleaving_matches_btreemap_oracle() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xD1CE + seed);
        let mut rel = Relation::new("R", Schema::of(&["A", "B", "C"]));
        let mut oracle: BTreeMap<Tuple, i64> = BTreeMap::new();
        // Start with one index; more are added mid-stream.
        let mut indexes = vec![(
            rel.add_index(&Schema::of(&["B"])),
            Schema::of(&["A", "B", "C"]).positions_of(&Schema::of(&["B"])),
        )];
        let pending = [
            Schema::of(&["C", "A"]),
            Schema::of(&["A"]),
            Schema::of(&["B", "C"]),
        ];
        let mut pending = pending.iter();
        for step in 0..3000 {
            // Small domains force slot recycling, group death/revival, and
            // multi-entry groups.
            let t = Tuple::ints(&[
                rng.gen_range(0..6i64),
                rng.gen_range(0..4i64),
                rng.gen_range(0..3i64),
            ]);
            let delta = rng.gen_range(-2..=2i64);
            let present = oracle.get(&t).copied().unwrap_or(0);
            let outcome = rel.apply(t.clone(), delta);
            if present + delta < 0 {
                let err = outcome.expect_err("negative multiplicity must be rejected");
                assert_eq!(err.present, present);
                assert_eq!(err.delta, delta);
            } else {
                let o = outcome.expect("legal delta");
                assert_eq!((o.before, o.after), (present, present + delta));
                if present + delta == 0 {
                    oracle.remove(&t);
                } else {
                    oracle.insert(t, present + delta);
                }
            }
            // Periodically add an index over live data and re-verify.
            if step % 800 == 700 {
                if let Some(key) = pending.next() {
                    let idx = rel.add_index(key);
                    let positions = Schema::of(&["A", "B", "C"]).positions_of(key);
                    indexes.push((idx, positions));
                }
            }
            if step % 250 == 249 {
                assert_matches_oracle(&rel, &oracle, &indexes);
            }
        }
        // Drain everything: group maps must shed (or tombstone) every key
        // and the slab must recycle cleanly.
        let remaining: Vec<(Tuple, i64)> = oracle.iter().map(|(t, m)| (t.clone(), *m)).collect();
        for (t, m) in remaining {
            rel.delete(t.clone(), m);
            oracle.remove(&t);
        }
        assert_matches_oracle(&rel, &oracle, &indexes);
        assert!(rel.is_empty());
    }
}

#[test]
fn batch_apply_matches_btreemap_oracle() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let mut rel = Relation::new("R", Schema::of(&["A", "B"]));
    let idx = rel.add_index(&Schema::of(&["B"]));
    let indexes = vec![(idx, vec![1usize])];
    let mut oracle: BTreeMap<Tuple, i64> = BTreeMap::new();
    for _ in 0..200 {
        // Unconsolidated batch with repeats and cancellations.
        let batch: Vec<(Tuple, i64)> = (0..rng.gen_range(1..30usize))
            .map(|_| {
                (
                    Tuple::ints(&[rng.gen_range(0..5i64), rng.gen_range(0..4i64)]),
                    rng.gen_range(-2..=2i64),
                )
            })
            .collect();
        // Net effect per tuple decides legality — mirror the relation's
        // consolidate-then-validate contract on the oracle.
        let mut net: BTreeMap<Tuple, i64> = BTreeMap::new();
        for (t, d) in &batch {
            *net.entry(t.clone()).or_insert(0) += d;
        }
        let legal = net
            .iter()
            .all(|(t, d)| oracle.get(t).copied().unwrap_or(0) + d >= 0);
        let outcome = rel.apply_batch(&batch);
        assert_eq!(outcome.is_ok(), legal, "batch legality diverged");
        if legal {
            for (t, d) in net {
                let m = oracle.get(&t).copied().unwrap_or(0) + d;
                if m == 0 {
                    oracle.remove(&t);
                } else {
                    oracle.insert(t, m);
                }
            }
        }
        assert_matches_oracle(&rel, &oracle, &indexes);
    }
}

/// Heavy↔light migration storm: one key oscillates around the 0.5·θ/1.5·θ
/// thresholds while the engine maintains a two-atom join at small θ.
#[test]
fn migration_storms_keep_engine_consistent() {
    let q = parse_query("Q(A) :- R(A,B), S(B)").unwrap();
    let mut db = Database::new();
    // Enough base data that θ = M^ε sits around 3–6: single-digit degree
    // changes cross the migration thresholds.
    for a in 0..40i64 {
        db.insert("R", Tuple::ints(&[a, a % 8]), 1);
    }
    for b in 0..8i64 {
        db.insert("S", Tuple::ints(&[b]), 1);
    }
    let mut eng = IvmEngine::new(&q, &db, EngineOptions::dynamic(0.4)).unwrap();
    let mut oracle = Recompute::new(&q);
    for a in 0..40i64 {
        oracle.apply_update("R", Tuple::ints(&[a, a % 8]), 1);
    }
    for b in 0..8i64 {
        oracle.apply_update("S", Tuple::ints(&[b]), 1);
    }
    eng.check_consistency().unwrap();

    let mut rng = StdRng::seed_from_u64(0x57021);
    for storm in 0..30 {
        // Pile inserts onto one key until it migrates heavy, then strip
        // them so it migrates back light; sprinkle noise on other keys.
        let hot = rng.gen_range(0..8i64);
        let burst = rng.gen_range(8..20i64);
        for i in 0..burst {
            let t = Tuple::ints(&[1000 + storm * 100 + i, hot]);
            eng.insert("R", t.clone()).unwrap();
            oracle.apply_update("R", t, 1);
        }
        if rng.gen_bool(0.5) {
            // Noise on the original keys; ignore misses on already-deleted
            // tuples, mirroring into the oracle only on success.
            let t = Tuple::ints(&[rng.gen_range(0..40i64), rng.gen_range(0..8i64)]);
            if eng.delete("R", t.clone()).is_ok() {
                oracle.apply_update("R", t, -1);
            }
        }
        for i in 0..burst {
            let t = Tuple::ints(&[1000 + storm * 100 + i, hot]);
            eng.delete("R", t.clone()).unwrap();
            oracle.apply_update("R", t, -1);
        }
        eng.check_consistency()
            .unwrap_or_else(|e| panic!("storm {storm}: {e}"));
        assert_eq!(
            eng.result_sorted(),
            oracle.evaluate(),
            "storm {storm}: result diverged from recompute"
        );
    }
    assert!(
        eng.stats().minor_rebalances > 0,
        "the storm must actually trigger migrations"
    );
}
