//! Serving read-path equivalence suite (PR 4).
//!
//! Randomized interleavings of `apply_delta_batch` with the read APIs —
//! `enumerate`, `enumerate_page`, `multiplicity`/`contains`,
//! `count_distinct`, `result_sorted` — on both `IvmEngine` and
//! `ShardedEngine` (S ∈ {1, 2, 4}), checked against brute force after
//! every round. The interleaving specifically exercises the sharded
//! engine's merge cache: reads *between* updates hit the cache, reads
//! *after* updates must see the invalidation, including
//!
//! * partial-component updates on multi-component queries (only the
//!   touched component may re-merge — the untouched component's cached
//!   merge must still be correct), and
//! * updates that trigger `major_rebalance` (the internal representation
//!   is rebuilt wholesale while the result — and the caches keyed on
//!   component versions, which a pure rebalance does not bump — stays
//!   valid).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivme_core::{
    brute_force, Database, DeltaBatch, EngineOptions, IvmEngine, ShardedEngine, Update,
};
use ivme_data::Tuple;
use ivme_query::parse_query;

/// The paper's example queries (single- and multi-component, bound and
/// free roots, repeated structure) plus boolean and multi-component forms.
const QUERIES: &[&str] = &[
    "Q(A,C) :- R(A,B), S(B,C)",                             // Example 28
    "Q(A) :- R(A,B), S(B)",                                 // Example 29 / OMv
    "Q(A,D,E) :- R(A,B,C), S(A,B,D), T(A,E)",               // Example 18
    "Q(C,D,E,F) :- R(A,B,D), S(A,B,E), T(A,C,F), U(A,C,G)", // Example 19
    "Q(X,Y0,Y1) :- R(X,Y0), S(X,Y1)",                       // δ0 star
    "Q() :- R(A,B), S(B,C)",                                // Boolean
    "Q(A,C) :- R(A,B), S(C)",                               // two components
];

const SHARD_GRID: &[usize] = &[1, 2, 4];

fn rel_names(q: &ivme_query::Query) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = Vec::new();
    for a in &q.atoms {
        if !out.iter().any(|(n, _)| n == &a.relation) {
            out.push((a.relation.clone(), a.schema.arity()));
        }
    }
    out
}

fn random_tuple(rng: &mut StdRng, arity: usize, domain: i64) -> Tuple {
    Tuple::ints(
        &(0..arity)
            .map(|_| rng.gen_range(0..domain))
            .collect::<Vec<i64>>(),
    )
}

/// Read-API cross-check of one engine state against the brute-force
/// oracle: sorted enumeration, distinct count, paging consistency with the
/// engine's own enumeration order, and point lookups for every present
/// tuple plus random absent probes.
fn check_reads<E>(
    label: &str,
    oracle: &[(Tuple, i64)],
    rng: &mut StdRng,
    free_arity: usize,
    result_sorted: impl Fn(&E) -> Vec<(Tuple, i64)>,
    enumerate: impl Fn(&E) -> Vec<(Tuple, i64)>,
    page: impl Fn(&E, usize, usize) -> Vec<(Tuple, i64)>,
    count: impl Fn(&E) -> usize,
    mult: impl Fn(&E, &Tuple) -> i64,
    eng: &E,
) {
    assert_eq!(result_sorted(eng), oracle, "{label}: result_sorted");
    assert_eq!(count(eng), oracle.len(), "{label}: count_distinct");
    let full = enumerate(eng);
    {
        let mut sorted = full.clone();
        sorted.sort();
        assert_eq!(sorted, oracle, "{label}: enumerate");
    }
    // Pages must slice the engine's own enumeration stream exactly —
    // including the empty page past the end.
    for _ in 0..3 {
        let offset = rng.gen_range(0..=full.len() + 2);
        let limit = rng.gen_range(0..=full.len() + 2);
        let expect: Vec<(Tuple, i64)> = full.iter().skip(offset).take(limit).cloned().collect();
        assert_eq!(
            page(eng, offset, limit),
            expect,
            "{label}: page({offset}, {limit})"
        );
    }
    assert!(
        page(eng, full.len(), 5).is_empty(),
        "{label}: page past end"
    );
    // Point lookups: every present tuple at its exact multiplicity, plus
    // random probes (absent ones must report 0).
    for (t, m) in oracle {
        assert_eq!(mult(eng, t), *m, "{label}: multiplicity of {t:?}");
    }
    for _ in 0..5 {
        let probe = random_tuple(rng, free_arity, 9);
        let expect = oracle
            .iter()
            .find(|(t, _)| *t == probe)
            .map_or(0, |(_, m)| *m);
        assert_eq!(mult(eng, &probe), expect, "{label}: probe {probe:?}");
    }
}

#[test]
fn randomized_interleaved_reads_match_brute_force() {
    for (qi, src) in QUERIES.iter().enumerate() {
        let q = parse_query(src).unwrap();
        let rels = rel_names(&q);
        let free_arity = q.free.arity();
        for &shards in SHARD_GRID {
            let seed = 7000 * qi as u64 + shards as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut db = Database::new();
            for (name, arity) in &rels {
                for _ in 0..rng.gen_range(10..50) {
                    db.apply(name, random_tuple(&mut rng, *arity, 6), 1);
                }
            }
            let eps = [0.0, 0.5, 1.0][rng.gen_range(0..3usize)];
            let opts = EngineOptions::dynamic(eps);
            let mut plain = IvmEngine::new(&q, &db, opts).unwrap();
            let mut sharded = ShardedEngine::new(&q, &db, opts, shards).unwrap();
            for round in 0..10 {
                // A read before the update warms the sharded merge cache,
                // so the post-update read below exercises invalidation.
                if round % 2 == 1 {
                    let _ = sharded.enumerate().count();
                    let _ = sharded.enumerate_page(1, 3);
                }
                // Mixed batch: random relations (often only a strict
                // subset — on multi-component queries a partial-component
                // update), deletes only of live rows.
                let mut batch = DeltaBatch::new();
                let mut net = Vec::new();
                let touch_all = rng.gen_bool(0.3);
                let focus = rng.gen_range(0..rels.len());
                for _ in 0..rng.gen_range(5..30) {
                    let ri = if touch_all {
                        rng.gen_range(0..rels.len())
                    } else {
                        focus
                    };
                    let (name, arity) = &rels[ri];
                    let t = random_tuple(&mut rng, *arity, 6);
                    let live = db.get(name, &t)
                        + net
                            .iter()
                            .filter(|(n, nt, _)| n == name && nt == &t)
                            .map(|(_, _, d)| d)
                            .sum::<i64>();
                    let delta = if live > 0 && rng.gen_bool(0.4) { -1 } else { 1 };
                    batch.push(name, t.clone(), delta);
                    net.push((name.clone(), t, delta));
                }
                plain.apply_delta_batch(&batch).unwrap();
                sharded.apply_delta_batch(&batch).unwrap();
                for (name, t, d) in net {
                    db.apply(&name, t, d);
                }
                let oracle = brute_force(&q, &db);
                check_reads(
                    &format!("{src} plain round {round}"),
                    &oracle,
                    &mut rng,
                    free_arity,
                    IvmEngine::result_sorted,
                    |e: &IvmEngine| e.enumerate().collect(),
                    IvmEngine::enumerate_page,
                    IvmEngine::count_distinct,
                    |e: &IvmEngine, t: &Tuple| e.multiplicity(t),
                    &plain,
                );
                check_reads(
                    &format!("{src} S={shards} round {round}"),
                    &oracle,
                    &mut rng,
                    free_arity,
                    ShardedEngine::result_sorted,
                    |e: &ShardedEngine| e.enumerate().collect(),
                    ShardedEngine::enumerate_page,
                    ShardedEngine::count_distinct,
                    |e: &ShardedEngine, t: &Tuple| e.multiplicity(t),
                    &sharded,
                );
                // contains agrees with multiplicity on a sample.
                if let Some((t, _)) = oracle.first() {
                    assert!(plain.contains(t) && sharded.contains(t), "{src}");
                }
                // Wrong-arity probes are never in the result: report 0,
                // never panic (serving layers forward untrusted tuples).
                let bad = random_tuple(&mut rng, free_arity + 1, 6);
                assert_eq!(plain.multiplicity(&bad), 0, "{src}");
                assert_eq!(sharded.multiplicity(&bad), 0, "{src}");
                assert!(!plain.contains(&bad) && !sharded.contains(&bad));
            }
            sharded.check_consistency().unwrap();
        }
    }
}

#[test]
fn partial_component_update_invalidates_only_that_component() {
    // Two components: R(A,B) and S(C). Updates to S must bump only
    // component 1's version, and cached sharded reads must still see them.
    let q = parse_query("Q(A,C) :- R(A,B), S(C)").unwrap();
    let mut db = Database::new();
    db.insert_ints("R", &[&[1, 10], &[2, 11]]);
    db.insert_ints("S", &[&[7], &[8]]);
    let opts = EngineOptions::dynamic(0.5);
    let mut plain = IvmEngine::new(&q, &db, opts).unwrap();
    let mut sharded = ShardedEngine::new(&q, &db, opts, 2).unwrap();
    assert_eq!(plain.num_components(), 2);
    let v0 = (plain.component_version(0), plain.component_version(1));
    // Warm the merge cache, then update only S (component 1).
    assert_eq!(sharded.count_distinct(), 4);
    plain.insert("S", Tuple::ints(&[9])).unwrap();
    sharded.insert("S", Tuple::ints(&[9])).unwrap();
    db.apply("S", Tuple::ints(&[9]), 1);
    assert_eq!(
        plain.component_version(0),
        v0.0,
        "untouched component version must not move"
    );
    assert_eq!(
        plain.component_version(1),
        v0.1 + 1,
        "touched component version must bump"
    );
    assert_eq!(sharded.result_sorted(), brute_force(&q, &db));
    assert_eq!(sharded.count_distinct(), 6);
    assert_eq!(plain.result_sorted(), brute_force(&q, &db));
    // And the other way round: touch only R (component 0).
    let v1 = (plain.component_version(0), plain.component_version(1));
    plain.delete("R", Tuple::ints(&[2, 11])).unwrap();
    sharded.delete("R", Tuple::ints(&[2, 11])).unwrap();
    db.apply("R", Tuple::ints(&[2, 11]), -1);
    assert_eq!(plain.component_version(0), v1.0 + 1);
    assert_eq!(plain.component_version(1), v1.1);
    assert_eq!(sharded.result_sorted(), brute_force(&q, &db));
    assert_eq!(
        sharded.multiplicity(&Tuple::ints(&[1, 9])),
        1,
        "fresh S row visible through the point lookup"
    );
    assert_eq!(sharded.multiplicity(&Tuple::ints(&[2, 9])), 0);
}

#[test]
fn reads_survive_major_rebalance() {
    // A batch several times the database size forces threshold doubling
    // (major rebalance) on every engine; warmed caches must keep serving
    // correct results afterwards.
    let q = parse_query("Q(A) :- R(A,B), S(B)").unwrap();
    let mut db = Database::new();
    for i in 0..8i64 {
        db.insert("R", Tuple::ints(&[i, i % 4]), 1);
    }
    let opts = EngineOptions::dynamic(0.5);
    for shards in [1usize, 2, 4] {
        let mut plain = IvmEngine::new(&q, &db, opts).unwrap();
        let mut sharded = ShardedEngine::new(&q, &db, opts, shards).unwrap();
        let _ = sharded.enumerate().count(); // warm the merge cache
        let mut wdb = db.clone();
        let majors_before = plain.stats().major_rebalances;
        let mut batch = Vec::new();
        for i in 0..64i64 {
            batch.push(Update::insert("R", Tuple::ints(&[100 + i, i % 4])));
        }
        for j in 0..4i64 {
            batch.push(Update::insert("S", Tuple::ints(&[j])));
        }
        plain.apply_batch(&batch).unwrap();
        sharded.apply_batch(&batch).unwrap();
        for u in &batch {
            wdb.apply(&u.relation, u.tuple.clone(), u.delta);
        }
        assert!(
            plain.stats().major_rebalances > majors_before,
            "batch was sized to force a major rebalance"
        );
        let oracle = brute_force(&q, &wdb);
        assert_eq!(plain.result_sorted(), oracle, "S={shards}");
        assert_eq!(sharded.result_sorted(), oracle, "S={shards}");
        let full: Vec<(Tuple, i64)> = sharded.enumerate().collect();
        assert_eq!(sharded.enumerate_page(10, 7), full[10..17].to_vec());
        for (t, m) in &oracle {
            assert_eq!(plain.multiplicity(t), *m);
            assert_eq!(sharded.multiplicity(t), *m);
        }
    }
}
